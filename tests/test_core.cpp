// Unit tests for the core module: padding, RNG, thread registry, barrier,
// and hash/bit utilities.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/arch.hpp"
#include "core/backoff.hpp"
#include "core/barrier.hpp"
#include "core/group_probe.hpp"
#include "core/hash.hpp"
#include "core/padded.hpp"
#include "core/rng.hpp"
#include "core/thread_registry.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

// ---------- padding ----------

TEST(Padded, OccupiesWholeCacheLines) {
  EXPECT_EQ(sizeof(Padded<char>), kCacheLineSize);
  EXPECT_EQ(sizeof(Padded<std::uint64_t>), kCacheLineSize);
  EXPECT_GE(sizeof(Padded<char[200]>), 2 * kCacheLineSize);
  EXPECT_EQ(alignof(Padded<char>), kCacheLineSize);
}

TEST(Padded, ArrayElementsDoNotShareLines) {
  Padded<int> arr[4];
  for (int i = 0; i < 3; ++i) {
    auto a = reinterpret_cast<std::uintptr_t>(&arr[i].value);
    auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1].value);
    EXPECT_GE(b - a, kCacheLineSize);
  }
}

TEST(Padded, AccessorsWork) {
  Padded<int> p(41);
  EXPECT_EQ(*p, 41);
  *p += 1;
  EXPECT_EQ(p.value, 42);
}

// ---------- rng ----------

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);  // all residues hit in 1000 draws, w.h.p.
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.05);  // crude uniformity check
}

TEST(Rng, ThreadRngsAreIndependent) {
  std::vector<std::uint64_t> firsts(4);
  test::run_threads(4, [&](std::size_t i) { firsts[i] = thread_rng().next(); });
  std::set<std::uint64_t> uniq(firsts.begin(), firsts.end());
  EXPECT_EQ(uniq.size(), 4u);
}

// ---------- backoff ----------

TEST(Backoff, SaturatesAfterEnoughSpins) {
  Backoff b(4, 64);
  EXPECT_FALSE(b.saturated());
  for (int i = 0; i < 10; ++i) b.spin();
  EXPECT_TRUE(b.saturated());
  b.reset();
  EXPECT_FALSE(b.saturated());
}

// ---------- thread registry ----------

TEST(ThreadRegistry, IdsAreDenseAndUnique) {
  // Ids must be unique among threads that hold them *simultaneously*: a
  // second barrier keeps every thread alive (id acquired) until all have
  // recorded theirs.  (On a single-core host, threads otherwise run one
  // after another and legitimately recycle the same slot.)
  constexpr std::size_t kThreads = 8;
  std::vector<std::size_t> ids(kThreads);
  SpinBarrier hold(kThreads);
  test::run_threads(kThreads, [&](std::size_t i) {
    ids[i] = thread_id();
    hold.arrive_and_wait();
  });
  std::set<std::size_t> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), kThreads);
  for (auto id : ids) EXPECT_LT(id, kMaxThreads);
}

TEST(ThreadRegistry, IdStableWithinThread) {
  test::run_threads(4, [&](std::size_t) {
    const std::size_t first = thread_id();
    for (int i = 0; i < 100; ++i) EXPECT_EQ(thread_id(), first);
  });
}

TEST(ThreadRegistry, IdsAreRecycledAfterExit) {
  std::set<std::size_t> round1, round2;
  // Sequential short-lived threads should be able to reuse slots: after many
  // more rounds than kMaxThreads, ids must repeat.
  for (int i = 0; i < 200; ++i) {
    std::thread([&] {
      if (i < 100) {
        round1.insert(thread_id());
      } else {
        round2.insert(thread_id());
      }
    }).join();
  }
  EXPECT_LT(round1.size(), 100u);  // recycling happened
  EXPECT_LT(round2.size(), 100u);
}

// ---------- barrier ----------

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr std::size_t kThreads = 6;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> in_phase{0};
  std::atomic<bool> failed{false};

  test::run_threads(kThreads, [&](std::size_t) {
    for (int p = 0; p < kPhases; ++p) {
      in_phase.fetch_add(1, std::memory_order_relaxed);
      barrier.arrive_and_wait();
      // Between the two barriers every thread must have incremented.
      if (in_phase.load(std::memory_order_relaxed) <
          static_cast<int>(kThreads) * (p + 1)) {
        failed.store(true, std::memory_order_relaxed);
      }
      barrier.arrive_and_wait();
    }
  });
  EXPECT_FALSE(failed.load());
}

// ---------- hash utilities ----------

TEST(Hash, Mix64ChangesEveryInput) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 10000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 10000u);  // injective on this range (it's bijective)
}

TEST(Hash, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    total_flips += __builtin_popcountll(mix64(0x1234567890abcdefull) ^
                                        mix64(0x1234567890abcdefull ^
                                              (1ull << bit)));
  }
  const double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Hash, ReverseBitsRoundTrips) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next();
    EXPECT_EQ(reverse_bits64(reverse_bits64(v)), v);
  }
}

TEST(Hash, ReverseBitsKnownValues) {
  EXPECT_EQ(reverse_bits64(0), 0ull);
  EXPECT_EQ(reverse_bits64(1), 1ull << 63);
  EXPECT_EQ(reverse_bits64(~0ull), ~0ull);
  EXPECT_EQ(reverse_bits64(0x8000000000000000ull), 1ull);
}

TEST(Hash, Mix64IsInvertible) {
  // mix64 is a bijection: xorshift-by->=32 is an involution and both
  // multipliers are odd, so each step inverts exactly.  Applying the known
  // inverse (modular inverses of the multipliers, same xorshifts) must
  // recover every input — which also proves mix64 never collides.
  const auto unmix = [](std::uint64_t x) {
    x ^= x >> 33;
    x *= 0x9cb4b2f8129337dbull;  // inverse of 0xc4ceb9fe1a85ec53
    x ^= x >> 33;
    x *= 0x4f74430c22a54005ull;  // inverse of 0xff51afd7ed558ccd
    x ^= x >> 33;
    return x;
  };
  Xoshiro256 rng(17);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next();
    ASSERT_EQ(unmix(mix64(v)), v);
  }
  EXPECT_EQ(unmix(mix64(0)), 0ull);
  EXPECT_EQ(unmix(mix64(~0ull)), ~0ull);
}

TEST(Hash, Mix64AvalancheMatrix) {
  // Stronger than the single-point test above: for EVERY (input bit, output
  // bit) pair, flipping the input bit must flip the output bit with
  // probability near 1/2 across random bases.  Catches finalizers that
  // avalanche on average but leave individual lanes correlated.
  constexpr int kSamples = 1000;
  Xoshiro256 rng(29);
  std::vector<std::uint64_t> bases(kSamples);
  for (auto& b : bases) b = rng.next();
  for (int in = 0; in < 64; ++in) {
    std::array<int, 64> flips{};
    for (const std::uint64_t b : bases) {
      const std::uint64_t d = mix64(b) ^ mix64(b ^ (1ull << in));
      for (int out = 0; out < 64; ++out) flips[out] += (d >> out) & 1;
    }
    for (int out = 0; out < 64; ++out) {
      const double p = static_cast<double>(flips[out]) / kSamples;
      ASSERT_GT(p, 0.40) << "input bit " << in << " barely reaches output bit "
                         << out;
      ASSERT_LT(p, 0.60) << "input bit " << in << " over-drives output bit "
                         << out;
    }
  }
}

TEST(Hash, ReverseBitsReversesEachBitPosition) {
  // Exhaustive per-position check: bit i must land exactly at bit 63-i.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(reverse_bits64(1ull << i), 1ull << (63 - i));
  }
  // And round-trip on structured values the random test can miss.
  EXPECT_EQ(reverse_bits64(reverse_bits64(0x0123456789abcdefull)),
            0x0123456789abcdefull);
  EXPECT_EQ(reverse_bits64(0x00000000ffffffffull), 0xffffffff00000000ull);
}

TEST(Hash, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1ull);
  EXPECT_EQ(next_pow2(1), 1ull);
  EXPECT_EQ(next_pow2(2), 2ull);
  EXPECT_EQ(next_pow2(3), 4ull);
  EXPECT_EQ(next_pow2(4), 4ull);
  EXPECT_EQ(next_pow2(1000), 1024ull);
  EXPECT_EQ(next_pow2(1ull << 40), 1ull << 40);
  EXPECT_EQ(next_pow2((1ull << 40) + 1), 1ull << 41);
}

// ---------- group probing (SIMD / SWAR tag search) ----------

// Pack 16 tag bytes into the two words the probe functions take (byte s of
// the pair is slot s; slots 0-7 in word 0).
std::pair<std::uint64_t, std::uint64_t> pack_tags(
    const std::array<std::uint8_t, kGroupSlots>& tags) {
  std::uint64_t w[2] = {0, 0};
  for (int s = 0; s < kGroupSlots; ++s) {
    w[s / 8] |= static_cast<std::uint64_t>(tags[s]) << (8 * (s % 8));
  }
  return {w[0], w[1]};
}

TEST(GroupProbe, MatchesExactSlots) {
  std::array<std::uint8_t, kGroupSlots> tags{};
  tags.fill(0x90);
  tags[0] = 0xa5;
  tags[7] = 0xa5;   // word-0 high byte
  tags[8] = 0xa5;   // word-1 low byte
  tags[15] = 0xa5;  // last slot
  const auto [w0, w1] = pack_tags(tags);
  EXPECT_EQ(group_match_tag(w0, w1, 0xa5), 0b1000000110000001u);
  EXPECT_EQ(group_match_tag(w0, w1, 0x90), 0b0111111001111110u);
  EXPECT_EQ(group_match_tag(w0, w1, 0x91), 0u);
  EXPECT_EQ(group_match_empty(w0, w1), 0u);
  EXPECT_EQ(group_match_free(w0, w1), 0u);
}

TEST(GroupProbe, EmptyTombAndFreeAreDistinct) {
  std::array<std::uint8_t, kGroupSlots> tags{};
  tags.fill(0xc3);
  tags[2] = kTagEmpty;
  tags[5] = kTagTomb;
  tags[11] = kTagEmpty;
  tags[12] = kTagTomb;
  const auto [w0, w1] = pack_tags(tags);
  EXPECT_EQ(group_match_empty(w0, w1), (1u << 2) | (1u << 11));
  EXPECT_EQ(group_match_tag(w0, w1, kTagTomb), (1u << 5) | (1u << 12));
  EXPECT_EQ(group_match_free(w0, w1),
            (1u << 2) | (1u << 5) | (1u << 11) | (1u << 12));
}

TEST(GroupProbe, EveryslotEveryTagExhaustive) {
  // One full sweep: each slot position crossed with a spread of tag values,
  // rest of the group filled with a non-matching full tag.  Exercises every
  // byte lane of whichever backend (SSE2/NEON/SWAR) this build selected.
  const std::uint8_t probes[] = {0x80, 0x81, 0x90, 0xa5, 0xc3, 0xfe, 0xff};
  for (int s = 0; s < kGroupSlots; ++s) {
    for (const std::uint8_t t : probes) {
      std::array<std::uint8_t, kGroupSlots> tags{};
      tags.fill(t == 0xee ? 0xdd : 0xee);
      tags[s] = t;
      const auto [w0, w1] = pack_tags(tags);
      ASSERT_EQ(group_match_tag(w0, w1, t), 1u << s)
          << "slot " << s << " tag " << int(t);
      ASSERT_EQ(group_match_empty(w0, w1), 0u);
      ASSERT_EQ(group_match_free(w0, w1), 0u);
    }
  }
}

TEST(GroupProbe, SwarZeroByteDetectorIsExact) {
  // The subtract-borrow zero-byte trick admits false positives (a 0x01 byte
  // neighbouring a genuine zero); the detector group_probe uses must be
  // exact.  Walk every byte value through every lane with the adversarial
  // 0x01/0x00 adjacency included.
  for (int lane = 0; lane < 8; ++lane) {
    for (int v = 0; v < 256; ++v) {
      const std::uint64_t w = (~0ull & ~(0xffull << (8 * lane))) |
                              (static_cast<std::uint64_t>(v) << (8 * lane));
      const std::uint64_t zb = detail::zero_bytes(w);
      ASSERT_EQ(zb != 0, v == 0) << "lane " << lane << " value " << v;
    }
  }
  // 0x01 byte directly above a 0x00 byte: the classic false-positive shape.
  EXPECT_EQ(detail::zero_bytes(0xffffffffffff0100ull),
            0x0000000000000080ull);  // only byte 0 is zero
  EXPECT_EQ(detail::msb_to_bits(detail::zero_bytes(0xffffffffffff0100ull)),
            1u);
}

TEST(GroupProbe, MaskIteration) {
  std::uint32_t m = 0b1000000000100100;
  EXPECT_EQ(group_first_slot(m), 2);
  m = group_clear_lowest(m);
  EXPECT_EQ(group_first_slot(m), 5);
  m = group_clear_lowest(m);
  EXPECT_EQ(group_first_slot(m), 15);
  m = group_clear_lowest(m);
  EXPECT_EQ(m, 0u);
}

TEST(GroupProbe, TagOfHashIsAlwaysFull) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 4096; ++i) {
    const std::uint8_t t = tag_of_hash(rng.next());
    ASSERT_GE(t, 0x80);  // high bit set: never collides with empty/tomb
  }
  EXPECT_EQ(tag_of_hash(0), 0x80);
  EXPECT_EQ(tag_of_hash(~0ull), 0xff);
}

}  // namespace
}  // namespace ccds

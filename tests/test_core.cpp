// Unit tests for the core module: padding, RNG, thread registry, barrier,
// and hash/bit utilities.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/arch.hpp"
#include "core/backoff.hpp"
#include "core/barrier.hpp"
#include "core/hash.hpp"
#include "core/padded.hpp"
#include "core/rng.hpp"
#include "core/thread_registry.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

// ---------- padding ----------

TEST(Padded, OccupiesWholeCacheLines) {
  EXPECT_EQ(sizeof(Padded<char>), kCacheLineSize);
  EXPECT_EQ(sizeof(Padded<std::uint64_t>), kCacheLineSize);
  EXPECT_GE(sizeof(Padded<char[200]>), 2 * kCacheLineSize);
  EXPECT_EQ(alignof(Padded<char>), kCacheLineSize);
}

TEST(Padded, ArrayElementsDoNotShareLines) {
  Padded<int> arr[4];
  for (int i = 0; i < 3; ++i) {
    auto a = reinterpret_cast<std::uintptr_t>(&arr[i].value);
    auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1].value);
    EXPECT_GE(b - a, kCacheLineSize);
  }
}

TEST(Padded, AccessorsWork) {
  Padded<int> p(41);
  EXPECT_EQ(*p, 41);
  *p += 1;
  EXPECT_EQ(p.value, 42);
}

// ---------- rng ----------

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);  // all residues hit in 1000 draws, w.h.p.
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.05);  // crude uniformity check
}

TEST(Rng, ThreadRngsAreIndependent) {
  std::vector<std::uint64_t> firsts(4);
  test::run_threads(4, [&](std::size_t i) { firsts[i] = thread_rng().next(); });
  std::set<std::uint64_t> uniq(firsts.begin(), firsts.end());
  EXPECT_EQ(uniq.size(), 4u);
}

// ---------- backoff ----------

TEST(Backoff, SaturatesAfterEnoughSpins) {
  Backoff b(4, 64);
  EXPECT_FALSE(b.saturated());
  for (int i = 0; i < 10; ++i) b.spin();
  EXPECT_TRUE(b.saturated());
  b.reset();
  EXPECT_FALSE(b.saturated());
}

// ---------- thread registry ----------

TEST(ThreadRegistry, IdsAreDenseAndUnique) {
  // Ids must be unique among threads that hold them *simultaneously*: a
  // second barrier keeps every thread alive (id acquired) until all have
  // recorded theirs.  (On a single-core host, threads otherwise run one
  // after another and legitimately recycle the same slot.)
  constexpr std::size_t kThreads = 8;
  std::vector<std::size_t> ids(kThreads);
  SpinBarrier hold(kThreads);
  test::run_threads(kThreads, [&](std::size_t i) {
    ids[i] = thread_id();
    hold.arrive_and_wait();
  });
  std::set<std::size_t> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), kThreads);
  for (auto id : ids) EXPECT_LT(id, kMaxThreads);
}

TEST(ThreadRegistry, IdStableWithinThread) {
  test::run_threads(4, [&](std::size_t) {
    const std::size_t first = thread_id();
    for (int i = 0; i < 100; ++i) EXPECT_EQ(thread_id(), first);
  });
}

TEST(ThreadRegistry, IdsAreRecycledAfterExit) {
  std::set<std::size_t> round1, round2;
  // Sequential short-lived threads should be able to reuse slots: after many
  // more rounds than kMaxThreads, ids must repeat.
  for (int i = 0; i < 200; ++i) {
    std::thread([&] {
      if (i < 100) {
        round1.insert(thread_id());
      } else {
        round2.insert(thread_id());
      }
    }).join();
  }
  EXPECT_LT(round1.size(), 100u);  // recycling happened
  EXPECT_LT(round2.size(), 100u);
}

// ---------- barrier ----------

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr std::size_t kThreads = 6;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> in_phase{0};
  std::atomic<bool> failed{false};

  test::run_threads(kThreads, [&](std::size_t) {
    for (int p = 0; p < kPhases; ++p) {
      in_phase.fetch_add(1, std::memory_order_relaxed);
      barrier.arrive_and_wait();
      // Between the two barriers every thread must have incremented.
      if (in_phase.load(std::memory_order_relaxed) <
          static_cast<int>(kThreads) * (p + 1)) {
        failed.store(true, std::memory_order_relaxed);
      }
      barrier.arrive_and_wait();
    }
  });
  EXPECT_FALSE(failed.load());
}

// ---------- hash utilities ----------

TEST(Hash, Mix64ChangesEveryInput) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 10000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 10000u);  // injective on this range (it's bijective)
}

TEST(Hash, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    total_flips += __builtin_popcountll(mix64(0x1234567890abcdefull) ^
                                        mix64(0x1234567890abcdefull ^
                                              (1ull << bit)));
  }
  const double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Hash, ReverseBitsRoundTrips) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next();
    EXPECT_EQ(reverse_bits64(reverse_bits64(v)), v);
  }
}

TEST(Hash, ReverseBitsKnownValues) {
  EXPECT_EQ(reverse_bits64(0), 0ull);
  EXPECT_EQ(reverse_bits64(1), 1ull << 63);
  EXPECT_EQ(reverse_bits64(~0ull), ~0ull);
  EXPECT_EQ(reverse_bits64(0x8000000000000000ull), 1ull);
}

TEST(Hash, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1ull);
  EXPECT_EQ(next_pow2(1), 1ull);
  EXPECT_EQ(next_pow2(2), 2ull);
  EXPECT_EQ(next_pow2(3), 4ull);
  EXPECT_EQ(next_pow2(4), 4ull);
  EXPECT_EQ(next_pow2(1000), 1024ull);
  EXPECT_EQ(next_pow2(1ull << 40), 1ull << 40);
  EXPECT_EQ(next_pow2((1ull << 40) + 1), 1ull << 41);
}

}  // namespace
}  // namespace ccds

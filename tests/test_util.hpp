// Shared helpers for the ccds test suite.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "core/barrier.hpp"

namespace ccds::test {

// Run `fn(thread_index)` on `n` threads, started simultaneously via a
// barrier, and join them all.
inline void run_threads(std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  SpinBarrier barrier(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      barrier.arrive_and_wait();
      fn(i);
    });
  }
  for (auto& t : threads) t.join();
}

// Thread counts exercised by parameterized stress tests; trimmed to what the
// host actually has so CI boxes don't oversubscribe pathologically.
inline std::vector<int> stress_thread_counts() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> counts;
  for (int c : {1, 2, 4, 8}) {
    if (c <= std::max(hw, 2)) counts.push_back(c);
  }
  return counts;
}

}  // namespace ccds::test

// Tests for the stack family.  The key concurrent witnesses:
//   * conservation — every pushed value is popped at most once, and
//     push-count == pop-count + leftover;
//   * per-thread LIFO residue — single-threaded segments behave as a stack;
//   * no use-after-free — canary payload checks under churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/leaky.hpp"
#include "stack/coarse_stack.hpp"
#include "stack/elimination_stack.hpp"
#include "stack/treiber_stack.hpp"
#include "sync/spinlock.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

template <typename S>
class StackTest : public ::testing::Test {};

using StackTypes =
    ::testing::Types<LockStack<std::uint64_t>,
                     LockStack<std::uint64_t, TtasLock>,
                     TreiberStack<std::uint64_t, HazardDomain>,
                     TreiberStack<std::uint64_t, EpochDomain>,
                     TreiberStack<std::uint64_t, LeakyDomain>,
                     EliminationBackoffStack<std::uint64_t, HazardDomain>,
                     EliminationBackoffStack<std::uint64_t, EpochDomain>>;
TYPED_TEST_SUITE(StackTest, StackTypes);

TYPED_TEST(StackTest, EmptyPopReturnsNothing) {
  TypeParam s;
  EXPECT_FALSE(s.try_pop().has_value());
  EXPECT_TRUE(s.empty());
}

TYPED_TEST(StackTest, SingleThreadLifo) {
  TypeParam s;
  for (std::uint64_t i = 0; i < 100; ++i) s.push(i);
  EXPECT_FALSE(s.empty());
  for (std::uint64_t i = 100; i-- > 0;) {
    auto v = s.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(s.try_pop().has_value());
}

TYPED_TEST(StackTest, InterleavedPushPop) {
  TypeParam s;
  s.push(1);
  s.push(2);
  EXPECT_EQ(s.try_pop().value(), 2u);
  s.push(3);
  EXPECT_EQ(s.try_pop().value(), 3u);
  EXPECT_EQ(s.try_pop().value(), 1u);
  EXPECT_FALSE(s.try_pop().has_value());
}

TYPED_TEST(StackTest, ConcurrentPushThenDrain) {
  TypeParam s;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kPerThread; ++i) {
      s.push(static_cast<std::uint64_t>(idx) * kPerThread + i);
    }
  });
  std::set<std::uint64_t> seen;
  while (auto v = s.try_pop()) {
    EXPECT_TRUE(seen.insert(*v).second) << "duplicate " << *v;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TYPED_TEST(StackTest, ConcurrentMixedConservation) {
  TypeParam s;
  constexpr int kThreads = 8;
  constexpr int kOps = 20000;
  std::atomic<std::uint64_t> pushed{0}, popped{0};
  std::vector<std::set<std::uint64_t>> received(kThreads);

  test::run_threads(kThreads, [&](std::size_t idx) {
    std::uint64_t next = static_cast<std::uint64_t>(idx) << 32;
    for (int i = 0; i < kOps; ++i) {
      if (i % 2 == 0) {
        s.push(next++);
        pushed.fetch_add(1, std::memory_order_relaxed);
      } else if (auto v = s.try_pop()) {
        received[idx].insert(*v);
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Drain leftovers.
  std::uint64_t leftover = 0;
  std::set<std::uint64_t> all;
  while (auto v = s.try_pop()) {
    ++leftover;
    EXPECT_TRUE(all.insert(*v).second);
  }
  for (auto& r : received) {
    for (auto v : r) EXPECT_TRUE(all.insert(v).second) << "duplicate pop";
  }
  EXPECT_EQ(popped.load() + leftover, pushed.load());
  EXPECT_EQ(all.size(), pushed.load());
}

TYPED_TEST(StackTest, PopNeverInventsValues) {
  TypeParam s;
  constexpr std::uint64_t kMarker = 0xabcd000000000000ull;
  constexpr int kThreads = 6;
  std::atomic<bool> bogus{false};
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < 10000; ++i) {
      s.push(kMarker | (static_cast<std::uint64_t>(idx) << 24) |
             static_cast<std::uint64_t>(i));
      if (auto v = s.try_pop()) {
        if ((*v & 0xffff000000000000ull) != kMarker) bogus.store(true);
      }
    }
  });
  EXPECT_FALSE(bogus.load());
}

// ---------- reclamation integration ----------

TEST(TreiberStackReclaim, HazardDomainActuallyReclaims) {
  TreiberStack<std::uint64_t, HazardDomain> s;
  for (int round = 0; round < 20; ++round) {
    for (std::uint64_t i = 0; i < 500; ++i) s.push(i);
    while (s.try_pop()) {
    }
  }
  s.domain().collect_all();
  // 10k nodes retired; nearly all must be freed, not parked.
  EXPECT_LT(s.domain().retired_count(), 600u);
}

TEST(TreiberStackReclaim, LeakyDomainParksEverything) {
  TreiberStack<std::uint64_t, LeakyDomain> s;
  for (std::uint64_t i = 0; i < 1000; ++i) s.push(i);
  while (s.try_pop()) {
  }
  EXPECT_EQ(s.domain().retired_count(), 1000u);
}

// ---------- elimination specifics ----------

TEST(EliminationStack, HighContentionSymmetricWorkload) {
  // Equal pushes and pops at high contention maximize elimination; totals
  // must still balance exactly.
  EliminationBackoffStack<std::uint64_t> s;
  constexpr int kThreads = 8;
  constexpr int kPairs = 10000;
  std::atomic<std::uint64_t> pop_count{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kPairs; ++i) {
      s.push(static_cast<std::uint64_t>(idx) * kPairs + i);
      if (s.try_pop()) pop_count.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::uint64_t leftover = 0;
  while (s.try_pop()) ++leftover;
  EXPECT_EQ(pop_count.load() + leftover,
            static_cast<std::uint64_t>(kThreads) * kPairs);
}

}  // namespace
}  // namespace ccds

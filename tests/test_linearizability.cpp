// Linearizability testing proper: record many small concurrent histories
// against the real structures and verify each has a legal linearization;
// also verify the checker itself rejects known-bad histories (the checker
// is test infrastructure — it deserves its own tests).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "counter/combining_tree.hpp"
#include "counter/counters.hpp"
#include "core/rng.hpp"
#include "linearizability.hpp"
#include "list/harris_list.hpp"
#include "list/lazy_list.hpp"
#include "queue/ms_queue.hpp"
#include "queue/mpmc_queue.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "skiplist/lockfree_skiplist.hpp"
#include "stack/elimination_stack.hpp"
#include "stack/treiber_stack.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

using lin::Checker;
using lin::HistoryRecorder;
using lin::Op;

// ---------- checker self-tests: accept good, reject bad ----------

Op make_op(int kind, std::uint64_t arg, std::optional<std::uint64_t> result,
           std::uint64_t inv, std::uint64_t res) {
  Op op;
  op.kind = kind;
  op.arg = arg;
  op.result = result;
  op.invoke = inv;
  op.response = res;
  return op;
}

TEST(Checker, AcceptsSequentialQueueHistory) {
  std::vector<Op> h = {
      make_op(lin::QueueSpec::kEnq, 1, std::nullopt, 0, 1),
      make_op(lin::QueueSpec::kEnq, 2, std::nullopt, 2, 3),
      make_op(lin::QueueSpec::kDeq, 0, 1, 4, 5),
      make_op(lin::QueueSpec::kDeq, 0, 2, 6, 7),
      make_op(lin::QueueSpec::kDeq, 0, std::nullopt, 8, 9),
  };
  EXPECT_TRUE(Checker<lin::QueueSpec>::linearizable(h));
}

TEST(Checker, RejectsFifoViolation) {
  // Enq(1) then Enq(2), strictly ordered; a later Deq returns 2 then 1.
  std::vector<Op> h = {
      make_op(lin::QueueSpec::kEnq, 1, std::nullopt, 0, 1),
      make_op(lin::QueueSpec::kEnq, 2, std::nullopt, 2, 3),
      make_op(lin::QueueSpec::kDeq, 0, 2, 4, 5),
      make_op(lin::QueueSpec::kDeq, 0, 1, 6, 7),
  };
  EXPECT_FALSE(Checker<lin::QueueSpec>::linearizable(h));
}

TEST(Checker, AcceptsOverlappingReorder) {
  // Enq(1) and Enq(2) overlap, so Deq may see either order.
  std::vector<Op> h = {
      make_op(lin::QueueSpec::kEnq, 1, std::nullopt, 0, 3),
      make_op(lin::QueueSpec::kEnq, 2, std::nullopt, 1, 2),
      make_op(lin::QueueSpec::kDeq, 0, 2, 4, 5),
      make_op(lin::QueueSpec::kDeq, 0, 1, 6, 7),
  };
  EXPECT_TRUE(Checker<lin::QueueSpec>::linearizable(h));
}

TEST(Checker, RejectsLostValue) {
  // Enq(1) completed, then an empty Deq strictly after: value vanished.
  std::vector<Op> h = {
      make_op(lin::QueueSpec::kEnq, 1, std::nullopt, 0, 1),
      make_op(lin::QueueSpec::kDeq, 0, std::nullopt, 2, 3),
  };
  EXPECT_FALSE(Checker<lin::QueueSpec>::linearizable(h));
}

TEST(Checker, RejectsInventedValue) {
  std::vector<Op> h = {
      make_op(lin::QueueSpec::kEnq, 1, std::nullopt, 0, 1),
      make_op(lin::QueueSpec::kDeq, 0, 99, 2, 3),
  };
  EXPECT_FALSE(Checker<lin::QueueSpec>::linearizable(h));
}

TEST(Checker, RejectsStaleReadAfterCompletedRemove) {
  // Insert(5) done; Remove(5)=true done; strictly later Contains(5)=true.
  std::vector<Op> h = {
      make_op(lin::SetSpec::kInsert, 5, 1, 0, 1),
      make_op(lin::SetSpec::kRemove, 5, 1, 2, 3),
      make_op(lin::SetSpec::kContains, 5, 1, 4, 5),
  };
  EXPECT_FALSE(Checker<lin::SetSpec>::linearizable(h));
}

TEST(Checker, AcceptsConcurrentContainsEitherWay) {
  // Contains overlaps the Remove: both answers legal.
  for (std::uint64_t answer : {0ull, 1ull}) {
    std::vector<Op> h = {
        make_op(lin::SetSpec::kInsert, 5, 1, 0, 1),
        make_op(lin::SetSpec::kRemove, 5, 1, 2, 5),
        make_op(lin::SetSpec::kContains, 5, answer, 3, 4),
    };
    EXPECT_TRUE(Checker<lin::SetSpec>::linearizable(h))
        << "answer=" << answer;
  }
}

TEST(Checker, RejectsDuplicateCounterPriors) {
  std::vector<Op> h = {
      make_op(lin::CounterSpec::kFetchAdd, 1, 0, 0, 1),
      make_op(lin::CounterSpec::kFetchAdd, 1, 0, 2, 3),
  };
  EXPECT_FALSE(Checker<lin::CounterSpec>::linearizable(h));
}

TEST(Checker, RejectsStackOrderViolation) {
  // Push(1);Push(2) strictly ordered; Pop()=1 then Pop()=2 is FIFO, not LIFO.
  std::vector<Op> h = {
      make_op(lin::StackSpec::kPush, 1, std::nullopt, 0, 1),
      make_op(lin::StackSpec::kPush, 2, std::nullopt, 2, 3),
      make_op(lin::StackSpec::kPop, 0, 1, 4, 5),
      make_op(lin::StackSpec::kPop, 0, 2, 6, 7),
  };
  EXPECT_FALSE(Checker<lin::StackSpec>::linearizable(h));
}

// ---------- live-history harnesses ----------

// Run `trials` independent rounds: each constructs a fresh Structure,
// launches `threads` workers that each perform a handful of recorded
// operations, then checks the combined history is linearizable.  Small
// histories + many rounds beats one huge history: the check stays
// tractable and the interleaving space is still explored broadly.
template <typename Spec, typename Structure, typename WorkerFn>
void run_trials(int trials, int threads, WorkerFn&& worker) {
  for (int trial = 0; trial < trials; ++trial) {
    Structure s;
    HistoryRecorder rec;
    std::vector<HistoryRecorder::Log> logs(threads);
    test::run_threads(threads, [&](std::size_t idx) {
      Xoshiro256 rng(trial * 1000 + idx + 1);
      worker(s, rng, rec, logs[idx]);
    });
    std::vector<Op> history;
    for (auto& log : logs) {
      history.insert(history.end(), log.begin(), log.end());
    }
    ASSERT_TRUE(Checker<Spec>::linearizable(history))
        << "non-linearizable history in trial " << trial;
  }
}

// Queue-shaped worker: ~6 ops, mixed enqueue/dequeue.
template <typename Queue>
auto queue_worker() {
  return [](Queue& q, Xoshiro256& rng, HistoryRecorder& rec,
            HistoryRecorder::Log& log) {
    for (int i = 0; i < 6; ++i) {
      if (rng.next() & 1) {
        const std::uint64_t v = rng.next_below(100);
        rec.record_void(log, lin::QueueSpec::kEnq, v,
                        [&] { q.enqueue(v); });
      } else {
        rec.record(
            log, lin::QueueSpec::kDeq, 0, [&] { return q.try_dequeue(); },
            [](const std::optional<std::uint64_t>& r) {
              return r ? std::optional<std::uint64_t>(*r)
                       : std::optional<std::uint64_t>{};
            });
      }
    }
  };
}

TEST(LiveLinearizability, MSQueueHazard) {
  using Q = MSQueue<std::uint64_t, HazardDomain>;
  run_trials<lin::QueueSpec, Q>(80, 3, queue_worker<Q>());
}

TEST(LiveLinearizability, MSQueueEpoch) {
  using Q = MSQueue<std::uint64_t, EpochDomain>;
  run_trials<lin::QueueSpec, Q>(80, 3, queue_worker<Q>());
}

// Bounded MPMC queue: same spec (capacity never reached with 18 ops).
TEST(LiveLinearizability, VyukovMpmc) {
  struct Adapter {
    MpmcQueue<std::uint64_t> q{64};
    void enqueue(std::uint64_t v) { q.try_enqueue(v); }
    std::optional<std::uint64_t> try_dequeue() { return q.try_dequeue(); }
  };
  run_trials<lin::QueueSpec, Adapter>(80, 3, queue_worker<Adapter>());
}

// Stack-shaped worker.
template <typename Stack>
auto stack_worker() {
  return [](Stack& s, Xoshiro256& rng, HistoryRecorder& rec,
            HistoryRecorder::Log& log) {
    for (int i = 0; i < 6; ++i) {
      if (rng.next() & 1) {
        const std::uint64_t v = rng.next_below(100);
        rec.record_void(log, lin::StackSpec::kPush, v, [&] { s.push(v); });
      } else {
        rec.record(
            log, lin::StackSpec::kPop, 0, [&] { return s.try_pop(); },
            [](const std::optional<std::uint64_t>& r) {
              return r ? std::optional<std::uint64_t>(*r)
                       : std::optional<std::uint64_t>{};
            });
      }
    }
  };
}

TEST(LiveLinearizability, TreiberStack) {
  using S = TreiberStack<std::uint64_t, HazardDomain>;
  run_trials<lin::StackSpec, S>(80, 3, stack_worker<S>());
}

TEST(LiveLinearizability, EliminationStack) {
  using S = EliminationBackoffStack<std::uint64_t, HazardDomain>;
  run_trials<lin::StackSpec, S>(80, 3, stack_worker<S>());
}

// Set-shaped worker over a tiny key range (maximizes conflicts).
template <typename Set>
auto set_worker() {
  return [](Set& s, Xoshiro256& rng, HistoryRecorder& rec,
            HistoryRecorder::Log& log) {
    for (int i = 0; i < 6; ++i) {
      const std::uint64_t k = rng.next_below(3);
      switch (rng.next_below(3)) {
        case 0:
          rec.record(
              log, lin::SetSpec::kInsert, k, [&] { return s.insert(k); },
              [](bool r) { return std::optional<std::uint64_t>(r ? 1 : 0); });
          break;
        case 1:
          rec.record(
              log, lin::SetSpec::kRemove, k, [&] { return s.remove(k); },
              [](bool r) { return std::optional<std::uint64_t>(r ? 1 : 0); });
          break;
        default:
          rec.record(
              log, lin::SetSpec::kContains, k, [&] { return s.contains(k); },
              [](bool r) { return std::optional<std::uint64_t>(r ? 1 : 0); });
      }
    }
  };
}

TEST(LiveLinearizability, HarrisMichaelList) {
  using S = HarrisMichaelListSet<std::uint64_t, HazardDomain>;
  run_trials<lin::SetSpec, S>(80, 3, set_worker<S>());
}

TEST(LiveLinearizability, LazyList) {
  using S = LazyListSet<std::uint64_t>;
  run_trials<lin::SetSpec, S>(80, 3, set_worker<S>());
}

TEST(LiveLinearizability, LockFreeSkipList) {
  using S = LockFreeSkipListSet<std::uint64_t>;
  run_trials<lin::SetSpec, S>(80, 3, set_worker<S>());
}

// Counter worker: fetch_add with varying deltas.
template <typename C>
auto counter_worker() {
  return [](C& c, Xoshiro256& rng, HistoryRecorder& rec,
            HistoryRecorder::Log& log) {
    for (int i = 0; i < 6; ++i) {
      const std::uint64_t d = 1 + rng.next_below(4);
      rec.record(
          log, lin::CounterSpec::kFetchAdd, d, [&] { return c.fetch_add(d); },
          [](std::uint64_t prior) {
            return std::optional<std::uint64_t>(prior);
          });
    }
  };
}

TEST(LiveLinearizability, AtomicCounter) {
  run_trials<lin::CounterSpec, AtomicCounter>(80, 3,
                                              counter_worker<AtomicCounter>());
}

TEST(LiveLinearizability, CombiningTreeCounter) {
  run_trials<lin::CounterSpec, CombiningTreeCounter>(
      40, 3, counter_worker<CombiningTreeCounter>());
}

}  // namespace
}  // namespace ccds

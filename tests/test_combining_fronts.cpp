// Tests for the combining fronts (CombiningQueue / CombiningStack /
// CombiningCounter / BatchedSkipListSet / BatchedMap): sequential semantics,
// concurrent conservation, batch atomicity, and engine interchangeability —
// every front must behave identically on EVERY enrolled engine.  The engine
// lists below come from the sync/engines.hpp X-macro, so a newly enrolled
// engine is exercised by this whole file with no edit here.
//
// A two-node topology override is installed for the entire binary so the
// hierarchical engine (HSynch) actually runs multiple per-node lists even
// on a single-socket CI host; the flat engines ignore it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "counter/combining_counter.hpp"
#include "pool/stealing_pool.hpp"
#include "queue/combining_queue.hpp"
#include "skiplist/batched_map.hpp"
#include "skiplist/batched_skiplist.hpp"
#include "stack/combining_stack.hpp"
#include "core/topology.hpp"
#include "sync/engines.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

std::size_t two_node_map(std::size_t tid) { return tid % 2; }

// Deterministic 2-node topology for the whole binary: HSynch sizes its
// per-node lists at construction, so this must be live before any engine
// is built (gtest environments bracket every test).
class TwoNodeTopologyEnv : public ::testing::Environment {
 public:
  void SetUp() override { override_.emplace(2, &two_node_map); }
  void TearDown() override { override_.reset(); }

 private:
  std::optional<topology::ScopedOverride> override_;
};

::testing::Environment* const kTwoNodeTopologyEnv =
    ::testing::AddGlobalTestEnvironment(new TwoNodeTopologyEnv);

// ---------------------------------------------------------------------------
// Typed fixtures: each front is instantiated with every enrolled engine.
// ---------------------------------------------------------------------------

template <typename Q>
class CombiningQueueTest : public ::testing::Test {};
#define CCDS_WRAP_QUEUE(E) CombiningQueue<std::uint64_t, E>
using QueueTypes = ::testing::Types<CCDS_COMBINER_ENGINE_LIST(CCDS_WRAP_QUEUE)>;
#undef CCDS_WRAP_QUEUE
TYPED_TEST_SUITE(CombiningQueueTest, QueueTypes);

TYPED_TEST(CombiningQueueTest, FifoOrder) {
  TypeParam q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.try_dequeue(), std::nullopt);
  for (std::uint64_t i = 0; i < 100; ++i) q.enqueue(i);
  EXPECT_EQ(q.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto v = q.try_dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(q.empty());
}

TYPED_TEST(CombiningQueueTest, ConcurrentConservation) {
  TypeParam q;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kPerThread; ++i) {
      q.enqueue(static_cast<std::uint64_t>(idx) * kPerThread + i);
      if (auto v = q.try_dequeue()) got[idx].push_back(*v);
    }
  });
  // Drain the residue left by empty-queue dequeues racing enqueues.
  std::size_t residue = 0;
  while (q.try_dequeue()) ++residue;
  std::set<std::uint64_t> uniq;
  std::size_t total = residue;
  for (auto& v : got) {
    total += v.size();
    uniq.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(uniq.size(), total - residue) << "duplicate dequeue";
  EXPECT_TRUE(q.empty());
}

TYPED_TEST(CombiningQueueTest, BatchExecutesInOrderAtomically) {
  TypeParam q;
  using Op = QueueOp<std::uint64_t>;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) {
      // Enqueue two, dequeue two, all in one request: because the batch is
      // atomic and per-batch net queue delta is zero, the two dequeues must
      // return SOME two values (queue holds ≥2 entries once ours land).
      std::vector<Op> ops;
      ops.push_back(Op::enqueue(1));
      ops.push_back(Op::enqueue(2));
      ops.push_back(Op::dequeue());
      ops.push_back(Op::dequeue());
      q.apply_batch(std::span<Op>(ops));
      ASSERT_TRUE(ops[2].result.has_value());
      ASSERT_TRUE(ops[3].result.has_value());
    }
  });
  EXPECT_TRUE(q.empty());
}

template <typename S>
class CombiningStackTest : public ::testing::Test {};
#define CCDS_WRAP_STACK(E) CombiningStack<std::uint64_t, E>
using StackTypes = ::testing::Types<CCDS_COMBINER_ENGINE_LIST(CCDS_WRAP_STACK)>;
#undef CCDS_WRAP_STACK
TYPED_TEST_SUITE(CombiningStackTest, StackTypes);

TYPED_TEST(CombiningStackTest, LifoOrder) {
  TypeParam s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.try_pop(), std::nullopt);
  for (std::uint64_t i = 0; i < 100; ++i) s.push(i);
  EXPECT_EQ(s.size(), 100u);
  for (std::uint64_t i = 100; i-- > 0;) {
    auto v = s.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(s.empty());
}

TYPED_TEST(CombiningStackTest, ConcurrentConservation) {
  TypeParam s;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kPerThread; ++i) {
      s.push(static_cast<std::uint64_t>(idx) * kPerThread + i);
      if (auto v = s.try_pop()) got[idx].push_back(*v);
    }
  });
  std::size_t residue = 0;
  while (s.try_pop()) ++residue;
  std::set<std::uint64_t> uniq;
  std::size_t total = residue;
  for (auto& v : got) {
    total += v.size();
    uniq.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(uniq.size(), total - residue) << "duplicate pop";
}

TYPED_TEST(CombiningStackTest, BatchPushPopRoundTrip) {
  TypeParam s;
  using Op = StackOp<std::uint64_t>;
  std::vector<Op> ops;
  ops.push_back(Op::push(10));
  ops.push_back(Op::push(20));
  ops.push_back(Op::pop());  // sees 20 (LIFO within the atomic batch)
  ops.push_back(Op::pop());  // sees 10
  ops.push_back(Op::pop());  // stack empty again
  s.apply_batch(std::span<Op>(ops));
  ASSERT_TRUE(ops[2].result.has_value());
  EXPECT_EQ(*ops[2].result, 20u);
  ASSERT_TRUE(ops[3].result.has_value());
  EXPECT_EQ(*ops[3].result, 10u);
  EXPECT_EQ(ops[4].result, std::nullopt);
  EXPECT_TRUE(s.empty());
}

template <typename C>
class CombiningCounterTest : public ::testing::Test {};
#define CCDS_WRAP_COUNTER(E) CombiningCounter<E>
using CounterTypes =
    ::testing::Types<CCDS_COMBINER_ENGINE_LIST(CCDS_WRAP_COUNTER)>;
#undef CCDS_WRAP_COUNTER
TYPED_TEST_SUITE(CombiningCounterTest, CounterTypes);

TYPED_TEST(CombiningCounterTest, UniquePriorsUnderContention) {
  TypeParam c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::vector<std::uint64_t>> priors(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    priors[idx].reserve(kPerThread);
    for (int i = 0; i < kPerThread; ++i) priors[idx].push_back(c.fetch_add(1));
  });
  std::set<std::uint64_t> uniq;
  for (auto& v : priors) uniq.insert(v.begin(), v.end());
  EXPECT_EQ(uniq.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(c.load(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TYPED_TEST(CombiningCounterTest, BatchIsAtomic) {
  // Batch {read, add 10, read}: the two reads must differ by exactly the
  // batch's own delta — the witness that no foreign add interleaved.
  TypeParam c;
  constexpr int kThreads = 6;
  constexpr int kIters = 2000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) {
      CounterOp ops[3] = {CounterOp::read(), CounterOp::add(10),
                          CounterOp::read()};
      c.apply_batch(std::span<CounterOp>(ops));
      ASSERT_EQ(ops[1].prior, ops[0].prior);
      ASSERT_EQ(ops[2].prior, ops[0].prior + 10);
    }
  });
  EXPECT_EQ(c.load(), static_cast<std::uint64_t>(kThreads) * kIters * 10);
}

TYPED_TEST(CombiningCounterTest, InitialValue) {
  TypeParam c(100);
  EXPECT_EQ(c.load(), 100u);
  EXPECT_EQ(c.fetch_add(5), 100u);
  EXPECT_EQ(c.load(), 105u);
}

// ---------------------------------------------------------------------------
// BatchedSkipListSet: the sorted-batch front, every engine.
// ---------------------------------------------------------------------------

template <typename S>
class BatchedSkipListTest : public ::testing::Test {};
#define CCDS_WRAP_BSET(E) \
  BatchedSkipListSet<std::uint64_t, std::less<std::uint64_t>, E>
using BatchedTypes = ::testing::Types<CCDS_COMBINER_ENGINE_LIST(CCDS_WRAP_BSET)>;
#undef CCDS_WRAP_BSET
TYPED_TEST_SUITE(BatchedSkipListTest, BatchedTypes);

TYPED_TEST(BatchedSkipListTest, BasicSetSemantics) {
  TypeParam s;
  EXPECT_FALSE(s.contains(10));
  EXPECT_TRUE(s.insert(10));
  EXPECT_FALSE(s.insert(10));
  EXPECT_TRUE(s.contains(10));
  EXPECT_FALSE(s.contains(9));
  EXPECT_TRUE(s.remove(10));
  EXPECT_FALSE(s.remove(10));
  EXPECT_FALSE(s.contains(10));
  EXPECT_TRUE(s.insert(10));
  EXPECT_EQ(s.size(), 1u);
}

TYPED_TEST(BatchedSkipListTest, BatchResultsLandInSubmissionOrder) {
  TypeParam s;
  using Op = typename TypeParam::Op;
  // Unsorted keys with duplicates: results must come back in slot order,
  // with last-writer-wins semantics inside the batch.
  std::vector<Op> ops;
  ops.push_back(Op::insert(30));    // 0: inserted
  ops.push_back(Op::insert(10));    // 1: inserted
  ops.push_back(Op::contains(30));  // 2: sees op 0
  ops.push_back(Op::erase(30));     // 3: erases it
  ops.push_back(Op::contains(30));  // 4: gone again
  ops.push_back(Op::insert(30));    // 5: re-inserted
  ops.push_back(Op::insert(20));    // 6: inserted
  ops.push_back(Op::insert(10));    // 7: duplicate of op 1
  s.apply_batch(std::span<Op>(ops));
  EXPECT_TRUE(ops[0].result);
  EXPECT_TRUE(ops[1].result);
  EXPECT_TRUE(ops[2].result);
  EXPECT_TRUE(ops[3].result);
  EXPECT_FALSE(ops[4].result);
  EXPECT_TRUE(ops[5].result);
  EXPECT_TRUE(ops[6].result);
  EXPECT_FALSE(ops[7].result);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(20));
  EXPECT_TRUE(s.contains(30));
}

TYPED_TEST(BatchedSkipListTest, DedupAppliesNetEffectOnly) {
  TypeParam s;
  using Op = typename TypeParam::Op;
  s.reset_stats();
  // Five ops on one key, net effect: absent (insert/erase/insert/erase).
  std::vector<Op> ops;
  ops.push_back(Op::insert(7));
  ops.push_back(Op::erase(7));
  ops.push_back(Op::insert(7));
  ops.push_back(Op::contains(7));
  ops.push_back(Op::erase(7));
  s.apply_batch(std::span<Op>(ops));
  EXPECT_TRUE(ops[0].result);
  EXPECT_TRUE(ops[1].result);
  EXPECT_TRUE(ops[2].result);
  EXPECT_TRUE(ops[3].result);
  EXPECT_TRUE(ops[4].result);
  EXPECT_FALSE(s.contains(7));
  const auto st = s.stats();
  EXPECT_EQ(st.dedup_folded, 4u);  // 5 ops, 1 group
}

TYPED_TEST(BatchedSkipListTest, ConcurrentDisjointBatchesConserve) {
  TypeParam s;
  using Op = typename TypeParam::Op;
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 60;
  constexpr int kBatch = 32;
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int r = 0; r < kRounds; ++r) {
      std::vector<Op> ops;
      for (int i = 0; i < kBatch; ++i) {
        const std::uint64_t k = (static_cast<std::uint64_t>(r) * kBatch + i) *
                                    kThreads +
                                idx;
        // Even rounds insert fresh keys; odd rounds erase the previous
        // round's (disjoint per thread, so every op must succeed).
        ops.push_back(r % 2 == 0
                          ? Op::insert(k)
                          : Op::erase(k - static_cast<std::uint64_t>(kBatch) *
                                              kThreads));
      }
      s.apply_batch(std::span<Op>(ops));
      for (const Op& op : ops) ASSERT_TRUE(op.result);
    }
  });
  // kRounds is even, so every insert round's block was erased by the odd
  // round right after it: the set ends empty.
  EXPECT_EQ(s.size(), 0u);
  const auto st = s.stats();
  EXPECT_EQ(st.ops, static_cast<std::uint64_t>(kThreads) * kRounds * kBatch);
  EXPECT_GE(st.merged_runs, st.batches);
}

TYPED_TEST(BatchedSkipListTest, BatchesAreAtomicAcrossKeys) {
  // Writer flips a 24-key block between all-present and all-absent, one
  // batch per flip; probers batch-read the whole block and must never see a
  // partial state.
  TypeParam s;
  using Op = typename TypeParam::Op;
  constexpr int kKeys = 24;
  constexpr int kFlips = 400;
  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  test::run_threads(4, [&](std::size_t idx) {
    if (idx == 0) {
      for (int f = 0; f < kFlips; ++f) {
        std::vector<Op> ops;
        for (int k = 0; k < kKeys; ++k) {
          ops.push_back(f % 2 == 0 ? Op::insert(k) : Op::erase(k));
        }
        s.apply_batch(std::span<Op>(ops));
      }
      done.store(true, std::memory_order_release);
    } else {
      while (!done.load(std::memory_order_acquire)) {
        std::vector<Op> ops;
        for (int k = 0; k < kKeys; ++k) ops.push_back(Op::contains(k));
        s.apply_batch(std::span<Op>(ops));
        int hits = 0;
        for (const Op& op : ops) hits += op.result ? 1 : 0;
        if (hits != 0 && hits != kKeys) torn.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(torn.load(), 0);
}

TYPED_TEST(BatchedSkipListTest, ShardedPartitionMatchesReference) {
  TypeParam s({1000, 2000, 3000});
  EXPECT_EQ(s.shard_count(), 4u);
  using Op = typename TypeParam::Op;
  std::set<std::uint64_t> reference;
  std::vector<Op> ops;
  for (std::uint64_t i = 0; i < 4000; i += 3) {
    ops.push_back(Op::insert(i));
    reference.insert(i);
  }
  s.apply_batch(std::span<Op>(ops));
  EXPECT_EQ(s.size(), reference.size());
  // Splitter boundary keys land on the right side of their range.
  for (std::uint64_t k : {999u, 1000u, 1001u, 1999u, 2000u, 2999u, 3000u}) {
    EXPECT_EQ(s.contains(k), reference.count(k) == 1) << "key " << k;
  }
  std::vector<Op> erases;
  for (std::uint64_t i = 0; i < 4000; i += 6) {
    erases.push_back(Op::erase(i));
    reference.erase(i);
  }
  s.apply_batch(std::span<Op>(erases));
  for (std::uint64_t k = 0; k < 4000; ++k) {
    ASSERT_EQ(s.contains(k), reference.count(k) == 1) << "key " << k;
  }
}

TYPED_TEST(BatchedSkipListTest, FanOutProducesSameStateAsInline) {
  // Same op stream with and without an attached executor: identical final
  // state, and the executor run must actually have fanned out.
  using Op = typename TypeParam::Op;
  std::vector<std::uint64_t> splits = {250, 500, 750};
  TypeParam inline_set(splits);
  TypeParam fan_set(splits);
  StealingExecutor<> exec(2);
  fan_set.attach_executor(exec);
  fan_set.set_fanout_threshold(8);

  for (int round = 0; round < 6; ++round) {
    std::vector<Op> a, b;
    for (std::uint64_t i = 0; i < 1000; ++i) {
      const std::uint64_t k = (i * 37 + round * 13) % 1000;
      auto op = round % 2 == 0 ? Op::insert(k) : Op::erase(k);
      a.push_back(op);
      b.push_back(op);
    }
    inline_set.apply_batch(std::span<Op>(a));
    fan_set.apply_batch(std::span<Op>(b));
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].result, b[i].result) << "slot " << i;
    }
  }
  fan_set.detach_executor();
  EXPECT_EQ(inline_set.size(), fan_set.size());
  const auto st = fan_set.stats();
  EXPECT_GT(st.fanout_batches, 0u);
  EXPECT_GT(st.fanout_subbatches, st.fanout_batches);
  EXPECT_EQ(inline_set.stats().fanout_batches, 0u);
}

// ---------------------------------------------------------------------------
// BatchedMap: the key/value veneer, every engine.
// ---------------------------------------------------------------------------

template <typename M>
class BatchedMapTest : public ::testing::Test {};
#define CCDS_WRAP_BMAP(E) \
  BatchedMap<std::uint64_t, std::uint64_t, std::less<std::uint64_t>, E>
using BatchedMapTypes =
    ::testing::Types<CCDS_COMBINER_ENGINE_LIST(CCDS_WRAP_BMAP)>;
#undef CCDS_WRAP_BMAP
TYPED_TEST_SUITE(BatchedMapTest, BatchedMapTypes);

TYPED_TEST(BatchedMapTest, PutGetEraseRoundTrip) {
  TypeParam m;
  EXPECT_EQ(m.get(1), std::nullopt);
  EXPECT_TRUE(m.put(1, 10));
  EXPECT_FALSE(m.put(1, 11));  // overwrite: key was present
  EXPECT_EQ(m.get(1), 11u);
  EXPECT_TRUE(m.contains(1));
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.get(1), std::nullopt);
  EXPECT_EQ(m.size(), 0u);
}

TYPED_TEST(BatchedMapTest, BatchGetsReadValuesAndLwwApplies) {
  TypeParam m;
  using Op = typename TypeParam::Op;
  std::vector<Op> ops;
  ops.push_back(TypeParam::put_op(5, 100));
  ops.push_back(TypeParam::get_op(5));      // sees 100
  ops.push_back(TypeParam::put_op(5, 200)); // last writer
  ops.push_back(TypeParam::get_op(7));      // miss
  m.apply_batch(std::span<Op>(ops));
  EXPECT_TRUE(ops[0].result);
  EXPECT_TRUE(ops[1].result);
  EXPECT_EQ(ops[1].key.value, 100u);
  EXPECT_FALSE(ops[2].result);
  EXPECT_FALSE(ops[3].result);
  EXPECT_EQ(m.get(5), 200u);
}

TYPED_TEST(BatchedMapTest, ConcurrentPutsToDistinctKeys) {
  TypeParam m;
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kPerThread = 400;
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      const std::uint64_t k = idx * kPerThread + i;
      ASSERT_TRUE(m.put(k, k * 2));
    }
  });
  EXPECT_EQ(m.size(), kThreads * kPerThread);
  for (std::uint64_t k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_EQ(m.get(k), k * 2) << "key " << k;
  }
}

TYPED_TEST(BatchedMapTest, ShardedMapWithKeyedLevels) {
  // Splitters + keyed towers together (the bench configuration).
  BatchedMap<std::uint64_t, std::uint64_t, std::less<std::uint64_t>, CcSynch,
             SkipListLevels::kKeyed>
      m({100, 200});
  EXPECT_EQ(m.shard_count(), 3u);
  for (std::uint64_t k = 0; k < 300; k += 5) EXPECT_TRUE(m.put(k, k + 1));
  for (std::uint64_t k = 0; k < 300; ++k) {
    if (k % 5 == 0) {
      ASSERT_EQ(m.get(k), k + 1) << "key " << k;
    } else {
      ASSERT_EQ(m.get(k), std::nullopt) << "key " << k;
    }
  }
}

}  // namespace
}  // namespace ccds

// Tests for the combining fronts (CombiningQueue / CombiningStack /
// CombiningCounter): sequential semantics, concurrent conservation, batch
// atomicity, and engine interchangeability — every front must behave
// identically whether backed by CcSynch or FlatCombiner.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "counter/combining_counter.hpp"
#include "queue/combining_queue.hpp"
#include "stack/combining_stack.hpp"
#include "sync/ccsynch.hpp"
#include "sync/flat_combining.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

// ---------------------------------------------------------------------------
// Typed fixtures: each front is instantiated with both engines.
// ---------------------------------------------------------------------------

template <typename Q>
class CombiningQueueTest : public ::testing::Test {};
using QueueTypes = ::testing::Types<CombiningQueue<std::uint64_t, CcSynch>,
                                    CombiningQueue<std::uint64_t, FlatCombiner>>;
TYPED_TEST_SUITE(CombiningQueueTest, QueueTypes);

TYPED_TEST(CombiningQueueTest, FifoOrder) {
  TypeParam q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.try_dequeue(), std::nullopt);
  for (std::uint64_t i = 0; i < 100; ++i) q.enqueue(i);
  EXPECT_EQ(q.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto v = q.try_dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(q.empty());
}

TYPED_TEST(CombiningQueueTest, ConcurrentConservation) {
  TypeParam q;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kPerThread; ++i) {
      q.enqueue(static_cast<std::uint64_t>(idx) * kPerThread + i);
      if (auto v = q.try_dequeue()) got[idx].push_back(*v);
    }
  });
  // Drain the residue left by empty-queue dequeues racing enqueues.
  std::size_t residue = 0;
  while (q.try_dequeue()) ++residue;
  std::set<std::uint64_t> uniq;
  std::size_t total = residue;
  for (auto& v : got) {
    total += v.size();
    uniq.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(uniq.size(), total - residue) << "duplicate dequeue";
  EXPECT_TRUE(q.empty());
}

TYPED_TEST(CombiningQueueTest, BatchExecutesInOrderAtomically) {
  TypeParam q;
  using Op = QueueOp<std::uint64_t>;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) {
      // Enqueue two, dequeue two, all in one request: because the batch is
      // atomic and per-batch net queue delta is zero, the two dequeues must
      // return SOME two values (queue holds ≥2 entries once ours land).
      std::vector<Op> ops;
      ops.push_back(Op::enqueue(1));
      ops.push_back(Op::enqueue(2));
      ops.push_back(Op::dequeue());
      ops.push_back(Op::dequeue());
      q.apply_batch(std::span<Op>(ops));
      ASSERT_TRUE(ops[2].result.has_value());
      ASSERT_TRUE(ops[3].result.has_value());
    }
  });
  EXPECT_TRUE(q.empty());
}

template <typename S>
class CombiningStackTest : public ::testing::Test {};
using StackTypes = ::testing::Types<CombiningStack<std::uint64_t, CcSynch>,
                                    CombiningStack<std::uint64_t, FlatCombiner>>;
TYPED_TEST_SUITE(CombiningStackTest, StackTypes);

TYPED_TEST(CombiningStackTest, LifoOrder) {
  TypeParam s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.try_pop(), std::nullopt);
  for (std::uint64_t i = 0; i < 100; ++i) s.push(i);
  EXPECT_EQ(s.size(), 100u);
  for (std::uint64_t i = 100; i-- > 0;) {
    auto v = s.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(s.empty());
}

TYPED_TEST(CombiningStackTest, ConcurrentConservation) {
  TypeParam s;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kPerThread; ++i) {
      s.push(static_cast<std::uint64_t>(idx) * kPerThread + i);
      if (auto v = s.try_pop()) got[idx].push_back(*v);
    }
  });
  std::size_t residue = 0;
  while (s.try_pop()) ++residue;
  std::set<std::uint64_t> uniq;
  std::size_t total = residue;
  for (auto& v : got) {
    total += v.size();
    uniq.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(uniq.size(), total - residue) << "duplicate pop";
}

TYPED_TEST(CombiningStackTest, BatchPushPopRoundTrip) {
  TypeParam s;
  using Op = StackOp<std::uint64_t>;
  std::vector<Op> ops;
  ops.push_back(Op::push(10));
  ops.push_back(Op::push(20));
  ops.push_back(Op::pop());  // sees 20 (LIFO within the atomic batch)
  ops.push_back(Op::pop());  // sees 10
  ops.push_back(Op::pop());  // stack empty again
  s.apply_batch(std::span<Op>(ops));
  ASSERT_TRUE(ops[2].result.has_value());
  EXPECT_EQ(*ops[2].result, 20u);
  ASSERT_TRUE(ops[3].result.has_value());
  EXPECT_EQ(*ops[3].result, 10u);
  EXPECT_EQ(ops[4].result, std::nullopt);
  EXPECT_TRUE(s.empty());
}

template <typename C>
class CombiningCounterTest : public ::testing::Test {};
using CounterTypes = ::testing::Types<CombiningCounter<CcSynch>,
                                      CombiningCounter<FlatCombiner>>;
TYPED_TEST_SUITE(CombiningCounterTest, CounterTypes);

TYPED_TEST(CombiningCounterTest, UniquePriorsUnderContention) {
  TypeParam c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::vector<std::uint64_t>> priors(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    priors[idx].reserve(kPerThread);
    for (int i = 0; i < kPerThread; ++i) priors[idx].push_back(c.fetch_add(1));
  });
  std::set<std::uint64_t> uniq;
  for (auto& v : priors) uniq.insert(v.begin(), v.end());
  EXPECT_EQ(uniq.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(c.load(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TYPED_TEST(CombiningCounterTest, BatchIsAtomic) {
  // Batch {read, add 10, read}: the two reads must differ by exactly the
  // batch's own delta — the witness that no foreign add interleaved.
  TypeParam c;
  constexpr int kThreads = 6;
  constexpr int kIters = 2000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) {
      CounterOp ops[3] = {CounterOp::read(), CounterOp::add(10),
                          CounterOp::read()};
      c.apply_batch(std::span<CounterOp>(ops));
      ASSERT_EQ(ops[1].prior, ops[0].prior);
      ASSERT_EQ(ops[2].prior, ops[0].prior + 10);
    }
  });
  EXPECT_EQ(c.load(), static_cast<std::uint64_t>(kThreads) * kIters * 10);
}

TYPED_TEST(CombiningCounterTest, InitialValue) {
  TypeParam c(100);
  EXPECT_EQ(c.load(), 100u);
  EXPECT_EQ(c.fetch_add(5), 100u);
  EXPECT_EQ(c.load(), 105u);
}

}  // namespace
}  // namespace ccds

// Analyzer fixture riding inside the test tree.  The function below leaks
// a guard-protected pointer, but only when CCDS_ANALYZE_FIXTURE is defined:
// the analyzer reads both arms of every #if, so `scripts/ccds_analyze.py
// --self-test` asserts the A1 finding at the marked line while the compiled
// test binary never contains the bug.  The TEST exercises the same API
// shape the correct way, pinning the in-scope discipline at runtime.
#include <gtest/gtest.h>

#include "core/atomic.hpp"
#include "reclaim/hazard.hpp"

namespace {

struct FixNode {
  int key = 0;
};

#ifdef CCDS_ANALYZE_FIXTURE
// BAD (analysis-only, never compiled): the guard dies at return, so the
// caller receives a pointer the domain is free to reclaim.
FixNode* leak_protected_pointer(ccds::HazardDomain& dom,
                                ccds::Atomic<FixNode*>& head) {
  auto g = dom.guard();
  FixNode* p = g.protect(0, head);
  return p;  // EXPECT-A1
}
#endif

TEST(AnalyzerFixture, GuardedReadStaysInScope) {
  ccds::HazardDomain dom;
  ccds::Atomic<FixNode*> head{new FixNode{41}};
  int out = 0;
  {
    auto g = dom.guard();
    FixNode* p = g.protect(0, head);
    out = p->key + 1;
  }
  FixNode* victim = head.exchange(nullptr, std::memory_order_acq_rel);
  dom.retire(victim);
  dom.collect_all();
  EXPECT_EQ(out, 42);
  EXPECT_EQ(dom.retired_count(), 0u);
}

}  // namespace

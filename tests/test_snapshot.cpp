// Tests for the wait-free atomic snapshot: scan atomicity (monotone,
// mutually comparable snapshots of monotone registers), the helping path,
// and reclamation of old revisions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sync/atomic_snapshot.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

TEST(AtomicSnapshot, SingleThreadedBasics) {
  AtomicSnapshot<std::uint64_t> snap(4);
  EXPECT_EQ(snap.size(), 4u);
  auto s0 = snap.scan();
  EXPECT_EQ(s0, (std::vector<std::uint64_t>{0, 0, 0, 0}));
  snap.update(1, 11);
  snap.update(3, 33);
  EXPECT_EQ(snap.load(1), 11u);
  auto s1 = snap.scan();
  EXPECT_EQ(s1, (std::vector<std::uint64_t>{0, 11, 0, 33}));
}

TEST(AtomicSnapshot, ScansAreMonotoneOverMonotoneRegisters) {
  // Writers only ever increase their register; therefore any two scans
  // must be pointwise comparable in the order they were taken by a single
  // observer (linearizability of scan would be violated otherwise).
  constexpr std::size_t kWriters = 3;
  AtomicSnapshot<std::uint64_t> snap(kWriters);
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};

  test::run_threads(kWriters + 2, [&](std::size_t idx) {
    if (idx < kWriters) {  // writer on register idx
      for (std::uint64_t v = 1; v <= 2000; ++v) snap.update(idx, v);
      if (idx == 0) stop.store(true);
    } else {  // scanners
      std::vector<std::uint64_t> prev(kWriters, 0);
      while (!stop.load(std::memory_order_relaxed)) {
        auto s = snap.scan();
        for (std::size_t i = 0; i < kWriters; ++i) {
          if (s[i] < prev[i]) violation.store(true);
        }
        prev = std::move(s);
      }
    }
  });
  EXPECT_FALSE(violation.load());
  // Register 0's writer finished: final scan shows its last value.
  EXPECT_EQ(snap.scan()[0], 2000u);
}

TEST(AtomicSnapshot, HelpingPathProducesValidSnapshots) {
  // One register updated at maximum speed spoils every double collect, so
  // scanners are forced through the embedded-snapshot (helping) path; the
  // returned snapshots must still be monotone.
  AtomicSnapshot<std::uint64_t> snap(2);
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> scans_done{0};

  test::run_threads(3, [&](std::size_t idx) {
    if (idx == 0) {  // hot writer
      std::uint64_t v = 1;
      while (!stop.load(std::memory_order_relaxed)) snap.update(0, v++);
    } else {  // scanners
      std::uint64_t prev = 0;
      for (int i = 0; i < 3000; ++i) {
        auto s = snap.scan();
        if (s[0] < prev) violation.store(true);
        prev = s[0];
        scans_done.fetch_add(1, std::memory_order_relaxed);
      }
      if (scans_done.load() >= 6000) stop.store(true);
    }
  });
  stop.store(true);
  EXPECT_FALSE(violation.load());
  EXPECT_GE(scans_done.load(), 6000u);  // every scan terminated (wait-free)
}

TEST(AtomicSnapshot, OldRevisionsAreReclaimed) {
  AtomicSnapshot<std::uint64_t> snap(2);
  for (std::uint64_t v = 1; v <= 2000; ++v) snap.update(v % 2, v);
  for (int i = 0; i < 8; ++i) snap.domain().collect_all();
  EXPECT_LT(snap.domain().retired_count(), 600u);
}

TEST(AtomicSnapshot, CrossRegisterConsistencyAtQuiescence) {
  AtomicSnapshot<std::uint64_t> snap(3);
  test::run_threads(3, [&](std::size_t idx) {
    for (std::uint64_t v = 1; v <= 500; ++v) snap.update(idx, v);
  });
  EXPECT_EQ(snap.scan(), (std::vector<std::uint64_t>{500, 500, 500}));
}

}  // namespace
}  // namespace ccds

// Tests for the CC-Synch combining engine: operations must appear atomic,
// all submitted operations must execute exactly once, results must be routed
// back to their submitters, and the combining-window handoff must not lose
// requests.  Mirrors test_flat_combining.cpp so the two engines are held to
// the same contract (sync/combiner.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "sync/ccsynch.hpp"
#include "sync/combiner.hpp"
#include "sync/flat_combining.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

// Both engines must model the shared policy the fronts are templated over.
static_assert(CombinerFor<CcSynch<std::uint64_t>, std::uint64_t>);
static_assert(CombinerFor<CcSynch<std::deque<int>>, std::deque<int>>);
static_assert(CombinerFor<FlatCombiner<std::uint64_t>, std::uint64_t>);
static_assert(CombinerFor<FlatCombiner<std::deque<int>>, std::deque<int>>);

TEST(CcSynch, SingleThreadedApply) {
  CcSynch<std::uint64_t> cc(10);
  const std::uint64_t prior = cc.apply([](std::uint64_t& v) {
    const std::uint64_t p = v;
    v += 5;
    return p;
  });
  EXPECT_EQ(prior, 10u);
  EXPECT_EQ(cc.apply([](std::uint64_t& v) { return v; }), 15u);
}

TEST(CcSynch, VoidOperations) {
  CcSynch<int> cc;
  cc.apply([](int& v) { v = 7; });
  EXPECT_EQ(cc.apply([](int& v) { return v; }), 7);
}

TEST(CcSynch, ConcurrentIncrementsAllApply) {
  CcSynch<std::uint64_t> cc;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) {
      cc.apply([](std::uint64_t& v) { ++v; });
    }
  });
  EXPECT_EQ(cc.apply([](std::uint64_t& v) { return v; }),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(CcSynch, FetchAddReturnsUniquePriors) {
  // fetch_add through the combiner must behave like an atomic counter: all
  // returned priors are distinct — the linearizability witness for counters.
  CcSynch<std::uint64_t> cc;
  constexpr int kThreads = 6;
  constexpr int kIters = 5000;
  std::vector<std::vector<std::uint64_t>> priors(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    priors[idx].reserve(kIters);
    for (int i = 0; i < kIters; ++i) {
      priors[idx].push_back(cc.apply([](std::uint64_t& v) { return v++; }));
    }
  });
  std::set<std::uint64_t> all;
  for (auto& v : priors) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kIters);
  EXPECT_EQ(*all.begin(), 0u);
  EXPECT_EQ(*all.rbegin(), static_cast<std::uint64_t>(kThreads) * kIters - 1);
}

TEST(CcSynch, TinyCombiningWindowStillExact) {
  // Window = 1: every combining pass serves exactly one request and hands
  // off — the maximum-handoff regime.  Conservation must be unaffected.
  CcSynch<std::uint64_t, 1> cc;
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) {
      cc.apply([](std::uint64_t& v) { ++v; });
    }
  });
  EXPECT_EQ(cc.apply([](std::uint64_t& v) { return v; }),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(CcSynch, WrapsNonTrivialState) {
  // A combined FIFO queue: the canonical combining application.
  CcSynch<std::deque<int>> cc;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2500;

  std::vector<std::vector<int>> popped(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kPerThread; ++i) {
      const int value = static_cast<int>(idx) * kPerThread + i;
      cc.apply([value](std::deque<int>& q) { q.push_back(value); });
      const auto got = cc.apply([](std::deque<int>& q) -> std::optional<int> {
        if (q.empty()) return std::nullopt;
        int v = q.front();
        q.pop_front();
        return v;
      });
      if (got) popped[idx].push_back(*got);
    }
  });

  // Conservation: everything pushed was popped exactly once (each thread
  // pops right after pushing, so the queue drains to empty).
  std::multiset<int> all;
  for (auto& v : popped) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<int> uniq(all.begin(), all.end());
  EXPECT_EQ(uniq.size(), all.size()) << "duplicate pop";
  EXPECT_TRUE(cc.apply([](std::deque<int>& q) { return q.empty(); }));
}

// A result type with no default constructor: combined-op results are
// constructed in place by the combiner (detail::ResultSlot), so this must
// compile and round-trip — the old FcResult<R> value-initialized R and
// rejected exactly this type.
struct NoDefault {
  explicit NoDefault(std::uint64_t v) : value(v) {}
  NoDefault() = delete;
  std::uint64_t value;
};

TEST(CcSynch, NonDefaultConstructibleResult) {
  CcSynch<std::uint64_t> cc(41);
  const NoDefault r = cc.apply([](std::uint64_t& v) { return NoDefault(++v); });
  EXPECT_EQ(r.value, 42u);
}

TEST(CcSynch, MoveOnlyResult) {
  CcSynch<std::uint64_t> cc(7);
  std::unique_ptr<std::uint64_t> p =
      cc.apply([](std::uint64_t& v) { return std::make_unique<std::uint64_t>(v); });
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 7u);
}

TEST(CcSynch, ApplyBatchRunsAtomically) {
  // A batch must execute with no foreign operation interleaved: reads at the
  // batch's ends bracket exactly the batch's own mutations.
  CcSynch<std::uint64_t> cc;
  constexpr int kThreads = 6;
  constexpr int kIters = 3000;
  struct ProbeOp {
    std::uint64_t delta = 0;
    std::uint64_t seen = 0;
    void operator()(std::uint64_t& v) {
      seen = v;
      v += delta;
    }
  };
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) {
      ProbeOp ops[3] = {{0, 0}, {10, 0}, {0, 0}};
      cc.apply_batch(std::span<ProbeOp>(ops));
      // ops[1] added 10 between the two probes; nothing else may interleave.
      ASSERT_EQ(ops[1].seen, ops[0].seen);
      ASSERT_EQ(ops[2].seen, ops[0].seen + 10);
    }
  });
  EXPECT_EQ(cc.apply([](std::uint64_t& v) { return v; }),
            static_cast<std::uint64_t>(kThreads) * kIters * 10);
}

}  // namespace
}  // namespace ccds

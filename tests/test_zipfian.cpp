// Distribution-mass sanity for the zipfian sampler behind the E17
// contention benches: if the sampler is wrong, the "hot-key" benchmark is
// measuring a different workload than it claims.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/zipf.hpp"

namespace ccds {
namespace {

std::vector<double> empirical_mass(const ZipfianGenerator& z,
                                   std::uint64_t samples) {
  Xoshiro256 rng(0xE17);
  std::vector<double> freq(z.size(), 0.0);
  for (std::uint64_t i = 0; i < samples; ++i) freq[z.next(rng)] += 1.0;
  for (auto& f : freq) f /= static_cast<double>(samples);
  return freq;
}

// Exact target mass: p(rank) = rank^-alpha / H_n(alpha).
std::vector<double> exact_mass(std::uint64_t n, double alpha) {
  std::vector<double> p(n);
  double total = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    p[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    total += p[i];
  }
  for (auto& v : p) v /= total;
  return p;
}

TEST(Zipfian, AlphaZeroIsUniform) {
  constexpr std::uint64_t kN = 256;
  constexpr std::uint64_t kSamples = 1 << 20;
  ZipfianGenerator z(kN, 0.0);
  const auto freq = empirical_mass(z, kSamples);
  // Every rank's empirical mass within 15% relative of 1/n (expected count
  // 4096 per rank; 3-sigma binomial noise is ~4.7% relative).
  const double uniform = 1.0 / static_cast<double>(kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(freq[i], uniform, 0.15 * uniform) << "rank " << i;
  }
}

TEST(Zipfian, AlphaTwelveTenthsMatchesExactMass) {
  constexpr std::uint64_t kN = 1024;
  constexpr std::uint64_t kSamples = 1 << 20;
  ZipfianGenerator z(kN, 1.2);
  const auto freq = empirical_mass(z, kSamples);
  const auto p = exact_mass(kN, 1.2);

  // Head ranks carry enough mass for tight relative checks.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(freq[i], p[i], 0.05 * p[i]) << "rank " << i;
  }
  // Rank 0 alone must dominate: ~23% of all draws at these parameters.
  EXPECT_GT(freq[0], 0.20);
  // Aggregate tail mass (ranks 512..1023) is tiny but nonzero.
  double tail_freq = 0.0;
  double tail_p = 0.0;
  for (std::uint64_t i = kN / 2; i < kN; ++i) {
    tail_freq += freq[i];
    tail_p += p[i];
  }
  EXPECT_NEAR(tail_freq, tail_p, 0.10 * tail_p);
  // Mass decreases with rank (checked on decile sums to average out noise).
  double prev = 1.0;
  for (int d = 0; d < 10; ++d) {
    double decile = 0.0;
    for (std::uint64_t i = d * (kN / 10); i < (d + 1) * (kN / 10); ++i) {
      decile += freq[i];
    }
    EXPECT_LT(decile, prev) << "decile " << d;
    prev = decile;
  }
}

TEST(Zipfian, DrawsStayInRangeAndDeterministic) {
  ZipfianGenerator z(37, 0.9);  // non-power-of-two n
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t va = z.next(a);
    ASSERT_LT(va, 37u);
    ASSERT_EQ(va, z.next(b));  // same seed, same stream
  }
}

}  // namespace
}  // namespace ccds

// Tests for the list-based-set spectrum.  All five implementations share
// the Set API (contains / insert / remove), so one typed suite drives them:
//   * sequential set semantics (duplicates rejected, absent removals fail);
//   * key-space partition stress — each thread owns a disjoint key range, so
//     per-thread results are deterministic even under full concurrency;
//   * shared-range stress with conservation accounting;
//   * insert/remove/contains interleavings around the same key.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "list/coarse_list.hpp"
#include "list/harris_list.hpp"
#include "list/hoh_list.hpp"
#include "list/lazy_list.hpp"
#include "list/optimistic_list.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

template <typename S>
class ListSetTest : public ::testing::Test {};

using ListSetTypes =
    ::testing::Types<CoarseListSet<std::uint64_t>,
                     HandOverHandListSet<std::uint64_t>,
                     OptimisticListSet<std::uint64_t>,
                     LazyListSet<std::uint64_t>,
                     HarrisMichaelListSet<std::uint64_t, HazardDomain>,
                     HarrisMichaelListSet<std::uint64_t, EpochDomain>>;
TYPED_TEST_SUITE(ListSetTest, ListSetTypes);

TYPED_TEST(ListSetTest, EmptySetContainsNothing) {
  TypeParam s;
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.contains(42));
  EXPECT_FALSE(s.remove(42));
}

TYPED_TEST(ListSetTest, InsertThenContains) {
  TypeParam s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
  EXPECT_FALSE(s.contains(6));
}

TYPED_TEST(ListSetTest, DuplicateInsertRejected) {
  TypeParam s;
  EXPECT_TRUE(s.insert(7));
  EXPECT_FALSE(s.insert(7));
  EXPECT_TRUE(s.remove(7));
  EXPECT_TRUE(s.insert(7));  // reinsert after removal
}

TYPED_TEST(ListSetTest, RemoveSemantics) {
  TypeParam s;
  EXPECT_TRUE(s.insert(1));
  EXPECT_TRUE(s.insert(2));
  EXPECT_TRUE(s.insert(3));
  EXPECT_TRUE(s.remove(2));
  EXPECT_FALSE(s.remove(2));
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(2));
  EXPECT_TRUE(s.contains(3));
}

TYPED_TEST(ListSetTest, OrderedInsertionPatterns) {
  // Ascending, descending, and interleaved insertions must all produce the
  // same set.
  for (int pattern = 0; pattern < 3; ++pattern) {
    TypeParam s;
    for (std::uint64_t i = 0; i < 200; ++i) {
      std::uint64_t k = pattern == 0   ? i
                        : pattern == 1 ? 199 - i
                                       : (i % 2 == 0 ? i / 2 : 199 - i / 2);
      EXPECT_TRUE(s.insert(k));
    }
    for (std::uint64_t i = 0; i < 200; ++i) EXPECT_TRUE(s.contains(i));
    EXPECT_FALSE(s.contains(200));
  }
}

TYPED_TEST(ListSetTest, DisjointKeyRangesFullyParallel) {
  // Each thread owns keys [idx*R, (idx+1)*R): its view must be exactly
  // sequential regardless of other threads.
  TypeParam s;
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kRange = 300;
  std::atomic<int> failures{0};

  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kRange;
    for (std::uint64_t i = 0; i < kRange; ++i) {
      if (!s.insert(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kRange; ++i) {
      if (!s.contains(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kRange; i += 2) {
      if (!s.remove(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kRange; ++i) {
      const bool expect_present = (i % 2) == 1;
      if (s.contains(base + i) != expect_present) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TYPED_TEST(ListSetTest, SharedRangeConservation) {
  // All threads fight over the same small key range; successful inserts and
  // removes of each key must alternate, so per-key (inserts - removes) is 0
  // or 1 and matches final membership.
  TypeParam s;
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kKeys = 32;
  constexpr int kOps = 20000;
  std::vector<std::vector<std::int64_t>> net(
      kThreads, std::vector<std::int64_t>(kKeys, 0));

  test::run_threads(kThreads, [&](std::size_t idx) {
    auto& mine = net[idx];
    std::uint64_t state = idx * 7919 + 1;
    for (int i = 0; i < kOps; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t key = (state >> 33) % kKeys;
      if ((state >> 13) & 1) {
        if (s.insert(key)) mine[key] += 1;
      } else {
        if (s.remove(key)) mine[key] -= 1;
      }
    }
  });

  for (std::uint64_t k = 0; k < kKeys; ++k) {
    std::int64_t total = 0;
    for (std::size_t t = 0; t < kThreads; ++t) total += net[t][k];
    ASSERT_GE(total, 0) << "more successful removes than inserts for " << k;
    ASSERT_LE(total, 1) << "key " << k << " multiply present";
    EXPECT_EQ(s.contains(k), total == 1) << "membership mismatch for " << k;
  }
}

TYPED_TEST(ListSetTest, ContainsDuringChurn) {
  // A key that is never removed must always be visible, no matter how much
  // churn happens around it.
  TypeParam s;
  constexpr std::uint64_t kPinned = 500;
  ASSERT_TRUE(s.insert(kPinned));
  std::atomic<bool> missing{false};

  test::run_threads(5, [&](std::size_t idx) {
    if (idx == 0) {  // observer
      for (int i = 0; i < 30000; ++i) {
        if (!s.contains(kPinned)) missing.store(true);
      }
    } else {  // churners on neighbouring keys
      for (int i = 0; i < 10000; ++i) {
        const std::uint64_t k = kPinned - 2 + (i % 5);  // 498..502, skips 500
        if (k == kPinned) continue;
        s.insert(k);
        s.remove(k);
      }
    }
  });
  EXPECT_FALSE(missing.load());
  EXPECT_TRUE(s.contains(kPinned));
}

// ---------- Harris-Michael reclamation integration ----------

TEST(HarrisListReclaim, NodesAreReclaimedUnderChurn) {
  HarrisMichaelListSet<std::uint64_t, HazardDomain> s;
  for (int round = 0; round < 30; ++round) {
    for (std::uint64_t i = 0; i < 200; ++i) s.insert(i);
    for (std::uint64_t i = 0; i < 200; ++i) s.remove(i);
  }
  s.domain().collect_all();
  EXPECT_LT(s.domain().retired_count(), 600u);
}

TEST(HarrisListReclaim, EpochVariantReclaims) {
  HarrisMichaelListSet<std::uint64_t, EpochDomain> s;
  for (int round = 0; round < 30; ++round) {
    for (std::uint64_t i = 0; i < 200; ++i) s.insert(i);
    for (std::uint64_t i = 0; i < 200; ++i) s.remove(i);
  }
  s.domain().collect_all();
  s.domain().collect_all();
  EXPECT_LT(s.domain().retired_count(), 1200u);
}

}  // namespace
}  // namespace ccds

// Tests for the pool module: the pairwise exchanger's swap semantics and
// the stealing pool's conservation under producers/consumers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <thread>

#include "pool/exchanger.hpp"
#include "pool/stealing_pool.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

TEST(Exchanger, TimesOutAlone) {
  Exchanger<int> ex;
  EXPECT_FALSE(ex.exchange(1, 100).has_value());
  // Slot must be clean afterwards: a later paired exchange still works.
  EXPECT_FALSE(ex.exchange(2, 100).has_value());
}

TEST(Exchanger, PairSwapsValues) {
  Exchanger<int> ex;
  std::optional<int> got_a, got_b;
  std::thread a([&] {
    // Generous budget: partner starts concurrently.
    for (int i = 0; i < 1000 && !got_a; ++i) got_a = ex.exchange(111, 10000);
  });
  std::thread b([&] {
    for (int i = 0; i < 1000 && !got_b; ++i) got_b = ex.exchange(222, 10000);
  });
  a.join();
  b.join();
  ASSERT_TRUE(got_a.has_value());
  ASSERT_TRUE(got_b.has_value());
  EXPECT_EQ(*got_a, 222);
  EXPECT_EQ(*got_b, 111);
}

TEST(Exchanger, ManyPairsConserveValues) {
  Exchanger<std::uint64_t> ex;
  constexpr std::size_t kThreads = 4;  // even: values pair up
  constexpr int kRounds = 2000;
  std::vector<std::vector<std::uint64_t>> received(kThreads);
  std::atomic<std::uint64_t> exchanged{0};

  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int r = 0; r < kRounds; ++r) {
      const std::uint64_t mine = idx * kRounds + r;
      if (auto v = ex.exchange(mine, 2000)) {
        received[idx].push_back(*v);
        exchanged.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Every received value was sent by someone, and no value is received
  // twice (each offer is consumed at most once).
  std::set<std::uint64_t> all;
  for (auto& v : received) {
    for (auto x : v) {
      EXPECT_TRUE(all.insert(x).second) << "value " << x << " delivered twice";
      EXPECT_LT(x, kThreads * kRounds);
    }
  }
  // Exchanges come in pairs.
  EXPECT_EQ(exchanged.load() % 2, 0u);
}

TEST(StealingPool, PutGetSingleThread) {
  StealingPool<std::uint64_t> pool;
  EXPECT_TRUE(pool.empty());
  pool.put(1);
  pool.put(2);
  EXPECT_FALSE(pool.empty());
  std::set<std::uint64_t> got;
  got.insert(pool.try_get().value());
  got.insert(pool.try_get().value());
  EXPECT_EQ(got, (std::set<std::uint64_t>{1, 2}));
  EXPECT_FALSE(pool.try_get().has_value());
}

TEST(StealingPool, GetStealsFromOtherThreads) {
  StealingPool<std::uint64_t> pool;
  // Producer thread fills its local stack and exits.
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < 100; ++i) pool.put(i);
  });
  producer.join();
  // This thread's local stack is empty: everything must come via stealing.
  std::set<std::uint64_t> got;
  while (auto v = pool.try_get()) got.insert(*v);
  EXPECT_EQ(got.size(), 100u);
}

TEST(StealingPool, ConcurrentConservation) {
  StealingPool<std::uint64_t> pool;
  constexpr std::size_t kThreads = 6;
  constexpr int kOps = 10000;
  std::atomic<std::uint64_t> put_count{0}, got_count{0};
  std::vector<std::set<std::uint64_t>> got(kThreads);

  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kOps; ++i) {
      if (i % 2 == 0) {
        pool.put((static_cast<std::uint64_t>(idx) << 32) | i);
        put_count.fetch_add(1, std::memory_order_relaxed);
      } else if (auto v = pool.try_get()) {
        got[idx].insert(*v);
        got_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::set<std::uint64_t> all;
  for (auto& s : got) {
    for (auto v : s) EXPECT_TRUE(all.insert(v).second) << "duplicate " << v;
  }
  std::uint64_t leftover = 0;
  while (pool.try_get()) ++leftover;
  EXPECT_EQ(got_count.load() + leftover, put_count.load());
}

}  // namespace
}  // namespace ccds

// Tests for the pool module: the pairwise exchanger's swap semantics and
// the stealing pool's conservation under producers/consumers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <thread>

#include "pool/exchanger.hpp"
#include "pool/stealing_pool.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

TEST(Exchanger, TimesOutAlone) {
  Exchanger<int> ex;
  EXPECT_FALSE(ex.exchange(1, 100).has_value());
  // Slot must be clean afterwards: a later paired exchange still works.
  EXPECT_FALSE(ex.exchange(2, 100).has_value());
}

TEST(Exchanger, PairSwapsValues) {
  Exchanger<int> ex;
  std::optional<int> got_a, got_b;
  std::thread a([&] {
    // Generous budget: partner starts concurrently.
    for (int i = 0; i < 1000 && !got_a; ++i) got_a = ex.exchange(111, 10000);
  });
  std::thread b([&] {
    for (int i = 0; i < 1000 && !got_b; ++i) got_b = ex.exchange(222, 10000);
  });
  a.join();
  b.join();
  ASSERT_TRUE(got_a.has_value());
  ASSERT_TRUE(got_b.has_value());
  EXPECT_EQ(*got_a, 222);
  EXPECT_EQ(*got_b, 111);
}

TEST(Exchanger, ManyPairsConserveValues) {
  Exchanger<std::uint64_t> ex;
  constexpr std::size_t kThreads = 4;  // even: values pair up
  constexpr int kRounds = 2000;
  std::vector<std::vector<std::uint64_t>> received(kThreads);
  std::atomic<std::uint64_t> exchanged{0};

  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int r = 0; r < kRounds; ++r) {
      const std::uint64_t mine = idx * kRounds + r;
      if (auto v = ex.exchange(mine, 2000)) {
        received[idx].push_back(*v);
        exchanged.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Every received value was sent by someone, and no value is received
  // twice (each offer is consumed at most once).
  std::set<std::uint64_t> all;
  for (auto& v : received) {
    for (auto x : v) {
      EXPECT_TRUE(all.insert(x).second) << "value " << x << " delivered twice";
      EXPECT_LT(x, kThreads * kRounds);
    }
  }
  // Exchanges come in pairs.
  EXPECT_EQ(exchanged.load() % 2, 0u);
}

TEST(StealingPool, PutGetSingleThread) {
  StealingPool<std::uint64_t> pool;
  EXPECT_TRUE(pool.empty());
  pool.put(1);
  pool.put(2);
  EXPECT_FALSE(pool.empty());
  std::set<std::uint64_t> got;
  got.insert(pool.try_get().value());
  got.insert(pool.try_get().value());
  EXPECT_EQ(got, (std::set<std::uint64_t>{1, 2}));
  EXPECT_FALSE(pool.try_get().has_value());
}

TEST(StealingPool, GetStealsFromOtherThreads) {
  StealingPool<std::uint64_t> pool;
  // Producer thread fills its local stack and exits.
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < 100; ++i) pool.put(i);
  });
  producer.join();
  // This thread's local stack is empty: everything must come via stealing.
  std::set<std::uint64_t> got;
  while (auto v = pool.try_get()) got.insert(*v);
  EXPECT_EQ(got.size(), 100u);
}

TEST(StealingPool, ConcurrentConservation) {
  StealingPool<std::uint64_t> pool;
  constexpr std::size_t kThreads = 6;
  constexpr int kOps = 10000;
  std::atomic<std::uint64_t> put_count{0}, got_count{0};
  std::vector<std::set<std::uint64_t>> got(kThreads);

  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kOps; ++i) {
      if (i % 2 == 0) {
        pool.put((static_cast<std::uint64_t>(idx) << 32) | i);
        put_count.fetch_add(1, std::memory_order_relaxed);
      } else if (auto v = pool.try_get()) {
        got[idx].insert(*v);
        got_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::set<std::uint64_t> all;
  for (auto& s : got) {
    for (auto v : s) EXPECT_TRUE(all.insert(v).second) << "duplicate " << v;
  }
  std::uint64_t leftover = 0;
  while (pool.try_get()) ++leftover;
  EXPECT_EQ(got_count.load() + leftover, put_count.load());
}

TEST(StealingPool, PutBulkDeliversSpanOrderLocally) {
  StealingPool<std::uint64_t> pool;
  const std::uint64_t vs[] = {1, 2, 3, 4};
  pool.put_bulk(std::span<const std::uint64_t>(vs, 4));
  // Bulk push onto our own stack: pops see span order (vs[0] on top).
  for (std::uint64_t want : {1, 2, 3, 4}) {
    EXPECT_EQ(pool.try_get().value(), want);
  }
  EXPECT_FALSE(pool.try_get().has_value());
}

TEST(StealingPool, PutBulkEmptySpanIsNoop) {
  StealingPool<std::uint64_t> pool;
  pool.put_bulk(std::span<const std::uint64_t>());
  EXPECT_TRUE(pool.empty());
  EXPECT_FALSE(pool.try_get().has_value());
}

TEST(StealingPool, PutBulkInterleavesWithSinglePuts) {
  StealingPool<std::uint64_t> pool;
  pool.put(100);
  const std::uint64_t vs[] = {1, 2, 3};
  pool.put_bulk(std::span<const std::uint64_t>(vs, 3));
  pool.put(200);
  std::set<std::uint64_t> got;
  while (auto v = pool.try_get()) got.insert(*v);
  EXPECT_EQ(got, (std::set<std::uint64_t>{1, 2, 3, 100, 200}));
}

TEST(StealingPool, CollectAllDrainsRetired) {
  StealingPool<std::uint64_t> pool;
  for (std::uint64_t i = 0; i < 64; ++i) pool.put(i);
  while (pool.try_get()) {
  }
  pool.collect_all();
  EXPECT_EQ(pool.retired_count(), 0u);
}

TEST(BulkLatch, ArmAndDrain) {
  BulkLatch latch;
  EXPECT_TRUE(latch.drained());  // unarmed latch is drained
  latch.arm(2);
  EXPECT_FALSE(latch.drained());
  latch.done();
  EXPECT_FALSE(latch.drained());
  latch.done();
  EXPECT_TRUE(latch.drained());
}

TEST(StealingExecutor, SubmitBulkRunsEveryTask) {
  StealingExecutor<> exec(2);
  constexpr std::size_t kTasks = 100;
  std::atomic<std::uint64_t> sum{0};
  StealingExecutor<>::Task tasks[kTasks];
  // Each task adds its own input into `sum` via a context pair.
  struct Ctx {
    std::atomic<std::uint64_t>* sum;
    std::uint64_t v;
  };
  Ctx ctxs[kTasks];
  for (std::size_t i = 0; i < kTasks; ++i) {
    ctxs[i] = Ctx{&sum, i + 1};
    tasks[i].fn = [](void* c) {
      Ctx* ctx = static_cast<Ctx*>(c);
      ctx->sum->fetch_add(ctx->v, std::memory_order_relaxed);
    };
    tasks[i].ctx = &ctxs[i];
  }
  BulkLatch latch;
  exec.submit_bulk(std::span<StealingExecutor<>::Task>(tasks, kTasks), latch);
  exec.wait(latch);
  EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2);
}

TEST(StealingExecutor, ZeroTaskSubmitIsNoop) {
  StealingExecutor<> exec(1);
  BulkLatch latch;
  exec.submit_bulk(std::span<StealingExecutor<>::Task>(), latch);
  EXPECT_TRUE(latch.drained());
  exec.wait(latch);  // returns immediately
}

TEST(StealingExecutor, WaiterHelpsWithZeroWorkers) {
  // No worker threads at all: wait() must finish the bulk by helping.
  StealingExecutor<> exec(0);
  ASSERT_EQ(exec.worker_count(), 0u);
  std::atomic<int> ran{0};
  constexpr std::size_t kTasks = 16;
  StealingExecutor<>::Task tasks[kTasks];
  for (auto& t : tasks) {
    t.fn = [](void* c) {
      static_cast<std::atomic<int>*>(c)->fetch_add(1,
                                                   std::memory_order_relaxed);
    };
    t.ctx = &ran;
  }
  BulkLatch latch;
  exec.submit_bulk(std::span<StealingExecutor<>::Task>(tasks, kTasks), latch);
  exec.wait(latch);
  EXPECT_EQ(ran.load(), static_cast<int>(kTasks));
  EXPECT_EQ(exec.worker_executed(), 0u);  // nobody but the helper ran them
}

TEST(StealingExecutor, BusyPoolAcceptsSecondBulk) {
  // Submit a second bulk while the first is still in flight (the
  // pool-already-busy edge): both latches must drain and every task run.
  StealingExecutor<> exec(2);
  std::atomic<int> ran_a{0}, ran_b{0};
  constexpr std::size_t kTasks = 64;
  StealingExecutor<>::Task a[kTasks], b[kTasks];
  for (auto& t : a) {
    t.fn = [](void* c) {
      static_cast<std::atomic<int>*>(c)->fetch_add(1,
                                                   std::memory_order_relaxed);
    };
    t.ctx = &ran_a;
  }
  for (auto& t : b) {
    t.fn = [](void* c) {
      static_cast<std::atomic<int>*>(c)->fetch_add(1,
                                                   std::memory_order_relaxed);
    };
    t.ctx = &ran_b;
  }
  BulkLatch la, lb;
  exec.submit_bulk(std::span<StealingExecutor<>::Task>(a, kTasks), la);
  exec.submit_bulk(std::span<StealingExecutor<>::Task>(b, kTasks), lb);
  exec.wait(lb);
  exec.wait(la);
  EXPECT_EQ(ran_a.load(), static_cast<int>(kTasks));
  EXPECT_EQ(ran_b.load(), static_cast<int>(kTasks));
}

TEST(StealingExecutor, ConcurrentSubmittersAllComplete) {
  StealingExecutor<> exec(2);
  constexpr std::size_t kThreads = 4;
  constexpr int kRounds = 50;
  constexpr std::size_t kTasks = 8;
  std::atomic<std::uint64_t> ran{0};
  test::run_threads(kThreads, [&](std::size_t) {
    for (int r = 0; r < kRounds; ++r) {
      StealingExecutor<>::Task tasks[kTasks];
      for (auto& t : tasks) {
        t.fn = [](void* c) {
          static_cast<std::atomic<std::uint64_t>*>(c)->fetch_add(
              1, std::memory_order_relaxed);
        };
        t.ctx = &ran;
      }
      BulkLatch latch;
      exec.submit_bulk(std::span<StealingExecutor<>::Task>(tasks, kTasks),
                       latch);
      exec.wait(latch);
    }
  });
  EXPECT_EQ(ran.load(), kThreads * kRounds * kTasks);
}

TEST(StealingExecutor, WorkerExecutedCountsCrossThreadWork) {
  StealingExecutor<> exec(2);
  // Park enough slow-ish tasks that the workers get a chance to pull some
  // before the helping waiter drains the rest.
  std::atomic<int> ran{0};
  constexpr std::size_t kTasks = 256;
  std::vector<StealingExecutor<>::Task> tasks(kTasks);
  for (auto& t : tasks) {
    t.fn = [](void* c) {
      static_cast<std::atomic<int>*>(c)->fetch_add(1,
                                                   std::memory_order_relaxed);
    };
    t.ctx = &ran;
  }
  BulkLatch latch;
  exec.submit_bulk(std::span<StealingExecutor<>::Task>(tasks.data(), kTasks),
                   latch);
  exec.wait(latch);
  EXPECT_EQ(ran.load(), static_cast<int>(kTasks));
  // Conservation, not scheduling: workers ran some subset of the tasks.
  EXPECT_LE(exec.worker_executed(), kTasks);
}

}  // namespace
}  // namespace ccds

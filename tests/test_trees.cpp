// Tests for the tree module: AVL structural invariants (order + balance +
// heights) across random workloads, and the lock-free tombstone BST's set
// semantics under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "core/rng.hpp"
#include "tree/fine_bst.hpp"
#include "tree/seq_avl.hpp"
#include "tree/tombstone_bst.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

// ---------- sequential AVL ----------

TEST(SeqAvl, BasicSetSemantics) {
  SeqAvlSet<int> t;
  EXPECT_FALSE(t.contains(1));
  EXPECT_TRUE(t.insert(1));
  EXPECT_FALSE(t.insert(1));
  EXPECT_TRUE(t.contains(1));
  EXPECT_TRUE(t.remove(1));
  EXPECT_FALSE(t.remove(1));
  EXPECT_EQ(t.size(), 0u);
}

TEST(SeqAvl, StaysBalancedOnSortedInsertion) {
  SeqAvlSet<int> t;
  for (int i = 0; i < 4096; ++i) ASSERT_TRUE(t.insert(i));
  EXPECT_TRUE(t.check_invariants());
  // Perfectly balanced would be 12; AVL guarantees <= 1.44 log2(n).
  EXPECT_LE(t.height(), 18);
  for (int i = 0; i < 4096; ++i) ASSERT_TRUE(t.contains(i));
}

TEST(SeqAvl, StaysBalancedOnReverseInsertion) {
  SeqAvlSet<int> t;
  for (int i = 4096; i-- > 0;) ASSERT_TRUE(t.insert(i));
  EXPECT_TRUE(t.check_invariants());
  EXPECT_LE(t.height(), 18);
}

TEST(SeqAvl, RandomizedAgainstStdSet) {
  SeqAvlSet<std::uint64_t> t;
  std::set<std::uint64_t> ref;
  Xoshiro256 rng(42);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t k = rng.next_below(500);
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), ref.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.remove(k), ref.erase(k) == 1);
        break;
      default:
        ASSERT_EQ(t.contains(k), ref.count(k) == 1);
    }
    if (i % 1000 == 0) {
      ASSERT_TRUE(t.check_invariants());
    }
  }
  ASSERT_TRUE(t.check_invariants());
  EXPECT_EQ(t.size(), ref.size());
}

TEST(SeqAvl, DeleteWithTwoChildrenKeepsInvariants) {
  SeqAvlSet<int> t;
  for (int k : {50, 25, 75, 12, 37, 62, 87, 6, 18, 31, 43}) t.insert(k);
  ASSERT_TRUE(t.remove(25));  // two children
  ASSERT_TRUE(t.remove(50));  // root with two children
  EXPECT_TRUE(t.check_invariants());
  for (int k : {75, 12, 37, 62, 87, 6, 18, 31, 43}) EXPECT_TRUE(t.contains(k));
  EXPECT_FALSE(t.contains(25));
  EXPECT_FALSE(t.contains(50));
}

TEST(CoarseAvl, ConcurrentMixedOperations) {
  CoarseAvlSet<std::uint64_t> t;
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kRange = 1000;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kRange;
    for (std::uint64_t i = 0; i < kRange; ++i) {
      if (!t.insert(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kRange; i += 2) {
      if (!t.remove(base + i)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(t.size(), kThreads * kRange / 2);
}

// ---------- lock-free tombstone BST ----------

TEST(TombstoneBst, BasicSetSemantics) {
  TombstoneBstSet<std::uint64_t> t;
  EXPECT_FALSE(t.contains(5));
  EXPECT_TRUE(t.insert(5));
  EXPECT_FALSE(t.insert(5));
  EXPECT_TRUE(t.contains(5));
  EXPECT_TRUE(t.remove(5));
  EXPECT_FALSE(t.remove(5));
  EXPECT_FALSE(t.contains(5));
  EXPECT_TRUE(t.insert(5));  // revival path
  EXPECT_TRUE(t.contains(5));
  EXPECT_EQ(t.size(), 1u);
}

TEST(TombstoneBst, RandomizedAgainstStdSet) {
  TombstoneBstSet<std::uint64_t> t;
  std::set<std::uint64_t> ref;
  Xoshiro256 rng(7);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t k = rng.next_below(400);
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), ref.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.remove(k), ref.erase(k) == 1);
        break;
      default:
        ASSERT_EQ(t.contains(k), ref.count(k) == 1);
    }
  }
  EXPECT_EQ(t.size(), ref.size());
}

TEST(TombstoneBst, ConcurrentDisjointRanges) {
  TombstoneBstSet<std::uint64_t> t;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kRange = 2000;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    // Interleave ranges so concurrent inserts hit shared tree paths.
    for (std::uint64_t i = 0; i < kRange; ++i) {
      if (!t.insert(i * kThreads + idx)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kRange; ++i) {
      if (!t.contains(i * kThreads + idx)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kRange; i += 2) {
      if (!t.remove(i * kThreads + idx)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(t.size(), kThreads * kRange / 2);
}

TEST(TombstoneBst, SharedRangeConservation) {
  TombstoneBstSet<std::uint64_t> t;
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kKeys = 64;
  constexpr int kOps = 20000;
  std::vector<std::vector<std::int64_t>> net(
      kThreads, std::vector<std::int64_t>(kKeys, 0));
  test::run_threads(kThreads, [&](std::size_t idx) {
    auto& mine = net[idx];
    std::uint64_t state = idx * 2621 + 5;
    for (int i = 0; i < kOps; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t key = (state >> 33) % kKeys;
      if ((state >> 13) & 1) {
        if (t.insert(key)) mine[key] += 1;
      } else {
        if (t.remove(key)) mine[key] -= 1;
      }
    }
  });
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    std::int64_t total = 0;
    for (std::size_t th = 0; th < kThreads; ++th) total += net[th][k];
    ASSERT_GE(total, 0);
    ASSERT_LE(total, 1);
    EXPECT_EQ(t.contains(k), total == 1);
  }
}

// ---------- fine-grained external BST ----------

TEST(FineBst, BasicSetSemantics) {
  FineBstSet<std::uint64_t> t;
  EXPECT_FALSE(t.contains(5));
  EXPECT_FALSE(t.remove(5));
  EXPECT_TRUE(t.insert(5));
  EXPECT_FALSE(t.insert(5));
  EXPECT_TRUE(t.contains(5));
  EXPECT_TRUE(t.remove(5));
  EXPECT_FALSE(t.remove(5));
  EXPECT_FALSE(t.contains(5));
  EXPECT_TRUE(t.insert(5));  // reinsert after physical deletion
  EXPECT_EQ(t.size(), 1u);
}

TEST(FineBst, DrainToEmptyAndReuse) {
  FineBstSet<std::uint64_t> t;
  for (std::uint64_t k = 0; k < 300; ++k) ASSERT_TRUE(t.insert(k));
  EXPECT_EQ(t.size(), 300u);
  for (std::uint64_t k = 0; k < 300; ++k) ASSERT_TRUE(t.remove(k));
  EXPECT_EQ(t.size(), 0u);
  for (std::uint64_t k = 0; k < 300; k += 3) ASSERT_TRUE(t.insert(k));
  for (std::uint64_t k = 0; k < 300; ++k) {
    ASSERT_EQ(t.contains(k), k % 3 == 0);
  }
}

TEST(FineBst, RandomizedAgainstStdSet) {
  FineBstSet<std::uint64_t> t;
  std::set<std::uint64_t> ref;
  Xoshiro256 rng(21);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t k = rng.next_below(400);
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), ref.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.remove(k), ref.erase(k) == 1);
        break;
      default:
        ASSERT_EQ(t.contains(k), ref.count(k) == 1);
    }
  }
  EXPECT_EQ(t.size(), ref.size());
}

TEST(FineBst, ConcurrentDisjointRanges) {
  FineBstSet<std::uint64_t> t;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kRange = 1500;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (std::uint64_t i = 0; i < kRange; ++i) {
      if (!t.insert(i * kThreads + idx)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kRange; ++i) {
      if (!t.contains(i * kThreads + idx)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kRange; i += 2) {
      if (!t.remove(i * kThreads + idx)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(t.size(), kThreads * kRange / 2);
}

TEST(FineBst, SharedRangeConservation) {
  FineBstSet<std::uint64_t> t;
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kKeys = 48;
  constexpr int kOps = 15000;
  std::vector<std::vector<std::int64_t>> net(
      kThreads, std::vector<std::int64_t>(kKeys, 0));
  test::run_threads(kThreads, [&](std::size_t idx) {
    auto& mine = net[idx];
    std::uint64_t state = idx * 48611 + 9;
    for (int i = 0; i < kOps; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t key = (state >> 33) % kKeys;
      if ((state >> 13) & 1) {
        if (t.insert(key)) mine[key] += 1;
      } else {
        if (t.remove(key)) mine[key] -= 1;
      }
    }
  });
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    std::int64_t total = 0;
    for (std::size_t th = 0; th < kThreads; ++th) total += net[th][k];
    ASSERT_GE(total, 0);
    ASSERT_LE(total, 1);
    EXPECT_EQ(t.contains(k), total == 1);
  }
}

}  // namespace
}  // namespace ccds

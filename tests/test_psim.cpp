// Tests for the P-Sim wait-free engine (sync/psim.hpp): exactness and
// unique results under contention, batch atomicity, exactly-once
// application despite helper re-execution, and the wait-free progress
// witness — with one thread preempted (parked) mid-combine via the
// preemption-injection hook, every other thread completes its full quota
// AND the parked thread's announced operation completes through helping.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "core/thread_registry.hpp"
#include "queue/combining_queue.hpp"
#include "sync/psim.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

TEST(PSim, ExactnessUnderContention) {
  PSim<std::uint64_t> e;
  constexpr std::size_t kThreads = 8;
  constexpr int kOps = 20000;
  std::vector<std::uint64_t> done(kThreads, 0);
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kOps; ++i) {
      e.apply([](std::uint64_t& v) { ++v; });
      ++done[idx];
    }
  });
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(done[t], static_cast<std::uint64_t>(kOps)) << "thread " << t;
  }
  EXPECT_EQ(e.apply([](std::uint64_t& v) { return v; }),
            kThreads * static_cast<std::uint64_t>(kOps));
}

// Every fetch_add must hand out a distinct prior even though helpers may
// execute the op several times against DISCARDED state copies — only the
// installed lineage counts, exactly once.
TEST(PSim, FetchAddPriorsUniqueUnderHelping) {
  PSim<std::uint64_t> e;
  constexpr std::size_t kThreads = 8;
  constexpr int kOps = 10000;
  std::vector<std::vector<std::uint64_t>> priors(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    priors[idx].reserve(kOps);
    for (int i = 0; i < kOps; ++i) {
      priors[idx].push_back(e.apply([](std::uint64_t& v) { return v++; }));
    }
  });
  std::set<std::uint64_t> uniq;
  for (auto& v : priors) uniq.insert(v.begin(), v.end());
  EXPECT_EQ(uniq.size(), kThreads * static_cast<std::size_t>(kOps));
  EXPECT_EQ(e.apply([](std::uint64_t& v) { return v; }),
            kThreads * static_cast<std::uint64_t>(kOps));
}

// Batches are snapshotted into the announce record and applied as one
// atomic unit; the two reads in {read, add 10, read} bracketing the add
// must differ by exactly the batch's own delta, and mutated ops must be
// copied back to the caller from the installed cell.
TEST(PSim, BatchesAtomicWithResultsCopiedBack) {
  struct AddOp {
    std::uint64_t delta;
    std::uint64_t seen;
    void operator()(std::uint64_t& v) {
      seen = v;
      v += delta;
    }
  };
  PSim<std::uint64_t> e;
  constexpr std::size_t kThreads = 6;
  constexpr int kIters = 4000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) {
      AddOp ops[3] = {{0, 0}, {10, 0}, {0, 0}};
      e.apply_batch(std::span<AddOp>(ops));
      ASSERT_EQ(ops[1].seen, ops[0].seen);
      ASSERT_EQ(ops[2].seen, ops[0].seen + 10);
    }
  });
  EXPECT_EQ(e.apply([](std::uint64_t& v) { return v; }),
            kThreads * static_cast<std::uint64_t>(kIters) * 10);
}

// The queue front over PSim: conservation and unique delivery (dequeues
// return results by value through the cell's result buffers).
TEST(PSim, QueueFrontConserves) {
  CombiningQueue<std::uint64_t, PSim> q;
  constexpr std::size_t kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kOps; ++i) {
      q.enqueue(static_cast<std::uint64_t>(idx) * kOps + i);
      if (auto v = q.try_dequeue()) got[idx].push_back(*v);
    }
  });
  std::size_t residue = 0;
  while (q.try_dequeue()) ++residue;
  std::set<std::uint64_t> uniq;
  std::size_t total = residue;
  for (auto& v : got) {
    total += v.size();
    uniq.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total, kThreads * static_cast<std::size_t>(kOps));
  EXPECT_EQ(uniq.size(), total - residue) << "duplicate dequeue";
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// The wait-free progress witness (EXPERIMENTS.md E20).
//
// The preemption-injection hook (sync/combiner.hpp) fires at PSim's
// combine-time preemption point — after a thread has announced its request
// and built a candidate cell, right BEFORE its SC.  A designated victim
// thread parks there, modeling a combiner preempted mid-episode at the
// worst moment.  A blocking engine would now stall everyone behind the
// victim; under PSim:
//
//   * every other thread must finish its complete operation quota while
//     the victim stays parked (the wait-freedom claim), and
//   * the victim's announced operation must be completed FOR it by
//     helpers' episodes — visible in the state total before release —
//     and applied exactly once overall (no double count after release).
// ---------------------------------------------------------------------------

struct ParkControl {
  std::atomic<std::size_t> victim{static_cast<std::size_t>(-1)};
  std::atomic<bool> armed{false};
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
};

void park_victim_hook(void* arg) {
  auto* ctl = static_cast<ParkControl*>(arg);
  if (!ctl->armed.load(std::memory_order_acquire)) return;
  if (thread_id() != ctl->victim.load(std::memory_order_acquire)) return;
  if (ctl->parked.exchange(true, std::memory_order_acq_rel)) return;
  while (!ctl->release.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

TEST(PSim, ProgressWitnessWithThreadParkedMidCombine) {
  PSim<std::uint64_t> e;
  ParkControl ctl;
  detail::set_preemption_hook(&park_victim_hook, &ctl);

  constexpr std::size_t kWorkers = 6;
  constexpr int kOps = 5000;

  std::thread victim([&] {
    ctl.victim.store(thread_id(), std::memory_order_release);
    ctl.armed.store(true, std::memory_order_release);
    // Announces, builds a candidate, parks at the pre-SC preemption point.
    e.apply([](std::uint64_t& v) { ++v; });
  });
  while (!ctl.parked.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // With the victim parked mid-combine, every worker completes its FULL
  // quota — run_threads joining at all is the progress claim; per-thread
  // counts make a partial stall a specific failure, not a hang.
  std::vector<std::uint64_t> done(kWorkers, 0);
  test::run_threads(kWorkers, [&](std::size_t idx) {
    for (int i = 0; i < kOps; ++i) {
      e.apply([](std::uint64_t& v) { ++v; });
      ++done[idx];
    }
  });
  for (std::size_t t = 0; t < kWorkers; ++t) {
    EXPECT_EQ(done[t], static_cast<std::uint64_t>(kOps)) << "worker " << t;
  }

  // The parked victim's announced increment was applied FOR it by helping
  // episodes: the total already includes it.
  EXPECT_EQ(e.apply([](std::uint64_t& v) { return v; }),
            kWorkers * static_cast<std::uint64_t>(kOps) + 1);

  ctl.release.store(true, std::memory_order_release);
  victim.join();
  detail::set_preemption_hook(nullptr, nullptr);

  // Exactly once: the victim's resumed SC must not re-apply its op.
  EXPECT_EQ(e.apply([](std::uint64_t& v) { return v; }),
            kWorkers * static_cast<std::uint64_t>(kOps) + 1);
}

}  // namespace
}  // namespace ccds

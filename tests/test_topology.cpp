// Tests for the machine-topology service (core/topology.hpp): the
// single-node fallback guarantee, the sysfs cpulist parser, the override
// mechanism, and the affinity helper rebased on it (pool/affinity.hpp).
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <vector>

#include "core/thread_registry.hpp"
#include "core/topology.hpp"
#include "pool/affinity.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

// The satellite guarantee: a host whose CPUs fit one cluster yields exactly
// ONE node — never zero — and bigger hosts get ceil(cpus/arity).  Pure
// function, so every interesting CPU count is testable on any machine.
TEST(Topology, FallbackClusterCountFloorsAtOne) {
  EXPECT_EQ(topology::fallback_cluster_count(0), 1u);
  EXPECT_EQ(topology::fallback_cluster_count(1), 1u);
  EXPECT_EQ(topology::fallback_cluster_count(topology::kFallbackClusterArity),
            1u);
  EXPECT_EQ(
      topology::fallback_cluster_count(topology::kFallbackClusterArity + 1),
      2u);
  EXPECT_EQ(
      topology::fallback_cluster_count(4 * topology::kFallbackClusterArity),
      4u);
  EXPECT_EQ(topology::fallback_cluster_count(
                4 * topology::kFallbackClusterArity + 1),
            5u);
  static_assert(topology::fallback_cluster_count(1) == 1);
}

TEST(Topology, HostReportsAtLeastOneNodeAndCpu) {
  EXPECT_GE(topology::node_count(), 1u);
  EXPECT_GE(topology::cpu_count(), 1u);
  // Whatever this host looks like, the calling thread lands on a valid node.
  EXPECT_LT(topology::current_node(), topology::node_count());
}

TEST(Topology, NodeOfCpuAlwaysBelowNodeCount) {
  const std::size_t nodes = topology::node_count();
  for (std::size_t cpu = 0; cpu < 4096; ++cpu) {
    ASSERT_LT(topology::node_of_cpu(cpu), nodes) << "cpu " << cpu;
  }
}

TEST(Topology, CpulistParserHandlesRangesAndSingles) {
  topology::detail::SysfsMap m;
  m.cpu_limit = 64;
  topology::detail::assign_cpulist(m, "0-3,8,10-11\n", 5);
  for (std::size_t c : {0u, 1u, 2u, 3u, 8u, 10u, 11u}) {
    EXPECT_EQ(m.cpu_node[c], 5u) << "cpu " << c;
  }
  for (std::size_t c : {4u, 5u, 7u, 9u, 12u}) {
    EXPECT_EQ(m.cpu_node[c], 0u) << "cpu " << c;
  }
}

TEST(Topology, CpulistParserClampsToLimitAndSurvivesGarbage) {
  topology::detail::SysfsMap m;
  m.cpu_limit = 8;
  topology::detail::assign_cpulist(m, "6-300", 3);  // clamped at cpu_limit
  EXPECT_EQ(m.cpu_node[6], 3u);
  EXPECT_EQ(m.cpu_node[7], 3u);
  topology::detail::assign_cpulist(m, "", 4);       // empty: no effect
  topology::detail::assign_cpulist(m, "x,y\n", 4);  // garbage: no effect
  EXPECT_EQ(m.cpu_node[0], 0u);
}

std::size_t mod3_map(std::size_t tid) { return tid % 3; }

TEST(Topology, OverrideWinsAndUninstallsOnScopeExit) {
  {
    topology::ScopedOverride ov(3, &mod3_map);
    EXPECT_EQ(topology::node_count(), 3u);
    EXPECT_EQ(topology::current_node(), thread_id() % 3);
  }
  // Uninstalled: back to the real host topology.
  EXPECT_GE(topology::node_count(), 1u);
  EXPECT_LT(topology::current_node(), topology::node_count());
}

TEST(Topology, OverrideWithZeroNodesFloorsAtOne) {
  topology::ScopedOverride ov(0, nullptr);
  EXPECT_EQ(topology::node_count(), 1u);
  EXPECT_EQ(topology::current_node(), 0u);
}

TEST(Topology, OverrideMapsEveryThreadDeterministically) {
  topology::ScopedOverride ov(2, &mod3_map);
  constexpr std::size_t kThreads = 8;
  std::vector<std::size_t> node(kThreads, ~0u);
  std::vector<std::size_t> tid(kThreads, ~0u);
  test::run_threads(kThreads, [&](std::size_t idx) {
    tid[idx] = thread_id();
    node[idx] = topology::current_node();
  });
  for (std::size_t i = 0; i < kThreads; ++i) {
    // node_of_tid maps through the override then folds into the node count.
    EXPECT_EQ(node[i], (tid[i] % 3) % 2) << "thread " << i;
  }
}

// pool/affinity.hpp rides the same service: shard counts up to the CPU
// count are coverable, beyond it are not, and the answer is never derived
// from a zero CPU count.
TEST(Topology, CoresCoverTracksCpuCount) {
  const std::size_t cpus = topology::cpu_count();
  EXPECT_TRUE(cores_cover(1));
  EXPECT_TRUE(cores_cover(cpus));
  EXPECT_FALSE(cores_cover(cpus + 1));
}

}  // namespace
}  // namespace ccds

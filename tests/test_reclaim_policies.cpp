// Cross-policy ablation suite: every node-based structure, typed over the
// full reclamation-policy matrix {Leaky, Hazard (wide), Epoch, QSBR} plus
// the lease-amortized adapters.  The point is that a structure's
// correctness must be POLICY-INDEPENDENT: the same concurrent witnesses
// (conservation, set semantics, no use-after-free — ASan-backed via
// scripts/run_asan_ubsan.sh) must hold under per-pointer protection,
// per-operation pins, and fence-free quiescent-state reads alike.
//
// WideHazardDomain stands in for hazard pointers throughout: the skip lists
// need a preds/succs slot pair per level (2*16 + scratch), which the
// default 8-slot domain cannot cover, and one domain type per policy keeps
// the matrix a clean cross-product.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "hash/split_ordered_set.hpp"
#include "hash/swiss_hash_map.hpp"
#include "list/harris_list.hpp"
#include "list/lazy_list.hpp"
#include "list/optimistic_list.hpp"
#include "pool/stealing_pool.hpp"
#include "queue/ms_queue.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/leaky.hpp"
#include "reclaim/qsbr.hpp"
#include "reclaim/rcu_cell.hpp"
#include "reclaim/reclaim.hpp"
#include "skiplist/batched_skiplist.hpp"
#include "skiplist/lazy_skiplist.hpp"
#include "skiplist/lockfree_skiplist.hpp"
#include "stack/elimination_stack.hpp"
#include "stack/treiber_stack.hpp"
#include "sync/atomic_snapshot.hpp"
#include "sync/engines.hpp"
#include "sync/spinlock.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

template <typename D>
class PolicyTest : public ::testing::Test {};

using Policies =
    ::testing::Types<LeakyDomain, WideHazardDomain, EpochDomain, QsbrDomain,
                     EpochLeaseDomain, LeasedDomain<QsbrDomain>>;
TYPED_TEST_SUITE(PolicyTest, Policies);

// The concept is the contract this whole file instantiates against.
static_assert(reclaimer<LeakyDomain> && reclaimer<WideHazardDomain> &&
              reclaimer<EpochDomain> && reclaimer<QsbrDomain> &&
              reclaimer<EpochLeaseDomain> &&
              reclaimer<LeasedDomain<QsbrDomain>>);

// After a structure's threads have joined and its final state is verified,
// the domain must honor the quiescent drain contract regardless of policy.
template <typename D>
void expect_drained(D& dom) {
  dom.collect_all();
  EXPECT_EQ(dom.retired_count(), 0u);
}

// ---------- Harris–Michael list ----------

TYPED_TEST(PolicyTest, HarrisListConcurrentChurn) {
  HarrisMichaelListSet<std::uint64_t, TypeParam> s;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 1500;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kPerThread;
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      if (!s.insert(base + i)) failures.fetch_add(1);
      if (!s.contains(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerThread; i += 2) {
      if (!s.remove(base + i)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  for (std::uint64_t i = 0; i < kThreads * kPerThread; ++i) {
    ASSERT_EQ(s.contains(i), (i % 2) == 1) << "key " << i;
  }
  expect_drained(s.domain());
}

// ---------- locking lists (optimistic + lazy) ----------

TYPED_TEST(PolicyTest, OptimisticListConcurrentChurn) {
  OptimisticListSet<std::uint64_t, std::less<std::uint64_t>, TtasLock,
                    TypeParam>
      s;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 800;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kPerThread;
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      if (!s.insert(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerThread; i += 2) {
      if (!s.remove(base + i)) failures.fetch_add(1);
      if (s.contains(base + i)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  for (std::uint64_t i = 0; i < kThreads * kPerThread; ++i) {
    ASSERT_EQ(s.contains(i), (i % 2) == 1) << "key " << i;
  }
  expect_drained(s.domain());
}

TYPED_TEST(PolicyTest, LazyListConcurrentChurn) {
  LazyListSet<std::uint64_t, std::less<std::uint64_t>, TtasLock, TypeParam> s;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 800;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kPerThread;
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      if (!s.insert(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerThread; i += 2) {
      if (!s.remove(base + i)) failures.fetch_add(1);
      if (s.contains(base + i)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  for (std::uint64_t i = 0; i < kThreads * kPerThread; ++i) {
    ASSERT_EQ(s.contains(i), (i % 2) == 1) << "key " << i;
  }
  expect_drained(s.domain());
}

// ---------- Michael–Scott queue ----------

TYPED_TEST(PolicyTest, MSQueueConservation) {
  MSQueue<std::uint64_t, TypeParam> q;
  constexpr std::size_t kProducers = 2, kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 4000;
  std::vector<std::vector<std::uint64_t>> got(kConsumers);
  std::atomic<std::uint64_t> consumed{0};
  test::run_threads(kProducers + kConsumers, [&](std::size_t idx) {
    if (idx < kProducers) {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.enqueue(idx * kPerProducer + i);
      }
    } else {
      auto& mine = got[idx - kProducers];
      while (consumed.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (auto v = q.try_dequeue()) {
          mine.push_back(*v);
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  std::set<std::uint64_t> all;
  for (const auto& mine : got) all.insert(mine.begin(), mine.end());
  EXPECT_EQ(all.size(), kProducers * kPerProducer);  // nothing lost or duped
  EXPECT_FALSE(q.try_dequeue().has_value());
  expect_drained(q.domain());
}

// ---------- Treiber + elimination stacks ----------

TYPED_TEST(PolicyTest, TreiberStackConservation) {
  TreiberStack<std::uint64_t, TypeParam> s;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 4000;
  std::atomic<std::uint64_t> popped{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      s.push(idx * kPerThread + i);
      if (auto v = s.try_pop()) popped.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::uint64_t leftover = 0;
  while (s.try_pop()) ++leftover;
  EXPECT_EQ(popped.load() + leftover, kThreads * kPerThread);
  expect_drained(s.domain());
}

TYPED_TEST(PolicyTest, EliminationStackConservation) {
  EliminationBackoffStack<std::uint64_t, TypeParam> s;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  std::atomic<std::uint64_t> popped{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      s.push(idx * kPerThread + i);
      if (auto v = s.try_pop()) popped.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::uint64_t leftover = 0;
  while (s.try_pop()) ++leftover;
  EXPECT_EQ(popped.load() + leftover, kThreads * kPerThread);
  expect_drained(s.domain());
}

// ---------- split-ordered hash set ----------

TYPED_TEST(PolicyTest, SplitOrderedConcurrentDisjointRanges) {
  SplitOrderedHashSet<std::uint64_t, MixHash<std::uint64_t>, TypeParam> s;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kPerThread;
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      if (!s.insert(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerThread; i += 2) {
      if (!s.remove(base + i)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(s.size(), kThreads * kPerThread / 2);
  expect_drained(s.domain());
}

// ---------- swiss table ----------

TYPED_TEST(PolicyTest, SwissMapConcurrentDisjointKeys) {
  SwissHashMap<std::uint64_t, std::uint64_t, MixHash<std::uint64_t>,
               TypeParam>
      m(16);  // tiny initial table: force cooperative rehashes mid-churn
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 3000;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kPerThread;
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      if (!m.insert(base + i, i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      auto v = m.get(base + i);
      if (!v || *v != i) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerThread; i += 2) {
      if (!m.erase(base + i)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(m.size(), kThreads * kPerThread / 2);
  expect_drained(m.domain());
}

// ---------- skip lists ----------

TYPED_TEST(PolicyTest, LockFreeSkipListConcurrentChurn) {
  LockFreeSkipListSet<std::uint64_t, std::less<std::uint64_t>, TypeParam> s;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 1200;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kPerThread;
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      if (!s.insert(base + i)) failures.fetch_add(1);
      if (!s.contains(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerThread; i += 2) {
      if (!s.remove(base + i)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  for (std::uint64_t i = 0; i < kThreads * kPerThread; ++i) {
    ASSERT_EQ(s.contains(i), (i % 2) == 1) << "key " << i;
  }
  expect_drained(s.domain());
}

// The kRestart ablation baseline (bench_skiplists.cpp E17) is shipped code
// and must hold up across the same six-policy matrix as the default
// local-recovery build — including the pointer-based domains, where the
// knob is moot (HP always restarts) but the instantiation must still
// compile and run.
TYPED_TEST(PolicyTest, LockFreeSkipListRestartConcurrentChurn) {
  LockFreeSkipListSet<std::uint64_t, std::less<std::uint64_t>, TypeParam,
                      SkipListRecovery::kRestart>
      s;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 1200;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kPerThread;
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      if (!s.insert(base + i)) failures.fetch_add(1);
      if (!s.contains(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerThread; i += 2) {
      if (!s.remove(base + i)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  for (std::uint64_t i = 0; i < kThreads * kPerThread; ++i) {
    ASSERT_EQ(s.contains(i), (i % 2) == 1) << "key " << i;
  }
  expect_drained(s.domain());
}

TYPED_TEST(PolicyTest, LazySkipListConcurrentChurn) {
  LazySkipListSet<std::uint64_t, std::less<std::uint64_t>, TtasLock,
                  TypeParam>
      s;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 1200;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kPerThread;
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      if (!s.insert(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerThread; i += 2) {
      if (!s.remove(base + i)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  for (std::uint64_t i = 0; i < kThreads * kPerThread; ++i) {
    ASSERT_EQ(s.contains(i), (i % 2) == 1) << "key " << i;
  }
  expect_drained(s.domain());
}

// Contended flavor: all threads fight over one 32-key range, so the lazy
// list's unlock-validate-retry path and its deferred node retirement both
// run hot under every policy.  Per-thread net counters make the final
// state checkable without any cross-thread coordination during the run.
TYPED_TEST(PolicyTest, LazySkipListContendedConservation) {
  LazySkipListSet<std::uint64_t, std::less<std::uint64_t>, TtasLock,
                  TypeParam>
      s;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kKeys = 32;
  constexpr int kOps = 8000;
  std::vector<std::vector<std::int64_t>> net(
      kThreads, std::vector<std::int64_t>(kKeys, 0));
  test::run_threads(kThreads, [&](std::size_t idx) {
    auto& mine = net[idx];
    std::uint64_t state = idx * 77779 + 3;
    for (int i = 0; i < kOps; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t key = (state >> 33) % kKeys;
      if ((state >> 13) & 1) {
        if (s.insert(key)) mine[key] += 1;
      } else {
        if (s.remove(key)) mine[key] -= 1;
      }
    }
  });
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    std::int64_t total = 0;
    for (std::size_t t = 0; t < kThreads; ++t) total += net[t][k];
    ASSERT_GE(total, 0) << "key " << k;
    ASSERT_LE(total, 1) << "key " << k;
    EXPECT_EQ(s.contains(k), total == 1) << "key " << k;
  }
  expect_drained(s.domain());
}

// ---------- stealing pool ----------

TYPED_TEST(PolicyTest, StealingPoolConservation) {
  StealingPool<std::uint64_t, TypeParam> pool;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  std::atomic<std::uint64_t> got{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      pool.put(idx * kPerThread + i);
      if ((i & 3) == 3) {  // drain a quarter as we go (exercises stealing)
        if (pool.try_get()) got.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  while (pool.try_get()) got.fetch_add(1, std::memory_order_relaxed);
  EXPECT_EQ(got.load(), kThreads * kPerThread);
  EXPECT_TRUE(pool.empty());
}

// ---------- batched skip list over a fan-out executor ----------

// The whole batching pipeline — merged combining episodes, key-range
// segmentation, bulk task submission, helper-thread application — churns
// under every policy AND every combining engine (sync/engines.hpp): the
// executor's pool shards are TreiberStacks whose nodes go through the
// policy TypeParam, so a policy bug anywhere in the fan-out path surfaces
// as lost tasks (latch hang) or ASan-visible reuse, and an engine bug
// (lost episode, torn batch) as a stats mismatch.
template <template <typename> class Engine, typename Policy>
void batched_fanout_churn_one() {
  using Set = BatchedSkipListSet<std::uint64_t, std::less<std::uint64_t>,
                                 Engine>;
  StealingExecutor<Policy> exec(2);
  Set s({500, 1000, 1500});
  s.attach_executor(exec);
  s.set_fanout_threshold(16);
  using Op = typename Set::Op;
  constexpr std::size_t kThreads = 4;
  constexpr int kRounds = 40;
  constexpr int kBatch = 48;
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int r = 0; r < kRounds; ++r) {
      std::vector<Op> ops;
      for (int i = 0; i < kBatch; ++i) {
        // Spread each batch across the whole 0..2000 key space so the
        // merged run crosses shard boundaries (fan-out segments > 1).
        const std::uint64_t k =
            (static_cast<std::uint64_t>(i) * 2000 / kBatch) + idx * 7 + r;
        ops.push_back(r % 2 == 0 ? Op::insert(k % 2000) : Op::erase(k % 2000));
      }
      s.apply_batch(std::span<Op>(ops));
    }
  });
  const auto st = s.stats();
  EXPECT_EQ(st.ops,
            static_cast<std::uint64_t>(kThreads) * kRounds * kBatch)
      << "engine " << combining_engine_name<Engine>::value;
  EXPECT_GT(st.fanout_batches, 0u)
      << "engine " << combining_engine_name<Engine>::value;
  s.detach_executor();
  exec.pool().collect_all();
  EXPECT_EQ(exec.pool().retired_count(), 0u)
      << "engine " << combining_engine_name<Engine>::value;
}

TYPED_TEST(PolicyTest, BatchedSkipListFanOutChurn) {
#define CCDS_CHURN_ROW(E) batched_fanout_churn_one<E, TypeParam>();
  CCDS_COMBINER_ENGINES(CCDS_CHURN_ROW)
#undef CCDS_CHURN_ROW
}

// ---------- RCU cell ----------

TYPED_TEST(PolicyTest, RcuCellReadersNeverSeeTornState) {
  struct Pair {
    std::uint64_t a = 0, b = 0;  // invariant: b == 2 * a
  };
  RcuCell<Pair, TypeParam> cell;
  constexpr std::size_t kThreads = 4;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    if (idx == 0) {  // writer
      for (std::uint64_t i = 1; i <= 3000; ++i) {
        cell.update([&](Pair& p) {
          p.a = i;
          p.b = 2 * i;
        });
      }
    } else {  // readers
      for (int i = 0; i < 3000; ++i) {
        auto snap = cell.read();
        if (snap->b != 2 * snap->a) failures.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cell.load().b, 2 * cell.load().a);
  expect_drained(cell.domain());
}

// ---------- atomic snapshot ----------

TYPED_TEST(PolicyTest, AtomicSnapshotScansAreConsistent) {
  // 3 registers -> 6 protection slots under HP (WideHazardDomain has 40).
  AtomicSnapshot<std::uint64_t, TypeParam> snap(3);
  constexpr std::size_t kWriters = 3;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  test::run_threads(kWriters + 1, [&](std::size_t idx) {
    if (idx < kWriters) {  // one writer per register (single-writer model)
      for (std::uint64_t v = 1; v <= 800; ++v) {
        snap.update(idx, v);  // each register counts up monotonically
      }
      if (idx == 0) stop.store(true);
    } else {  // scanner: a snapshot of monotone counters must be monotone
      std::vector<std::uint64_t> prev(3, 0);
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<std::uint64_t> cur = snap.scan();
        for (std::size_t i = 0; i < 3; ++i) {
          if (cur[i] < prev[i]) failures.fetch_add(1);
        }
        prev = std::move(cur);
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
  expect_drained(snap.domain());
}

}  // namespace
}  // namespace ccds

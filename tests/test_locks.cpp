// Tests for the sync module's mutual-exclusion spectrum: every lock must
// provide mutual exclusion and compose with std::lock_guard; locks with
// try_lock must honor its contract; the reader-writer lock must admit
// parallel readers and exclude writers; the seqlock must never show a torn
// snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "sync/anderson_lock.hpp"
#include "sync/clh_lock.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/rwlock.hpp"
#include "sync/seqlock.hpp"
#include "sync/spinlock.hpp"
#include "sync/ticket_lock.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

template <typename L>
class LockTest : public ::testing::Test {};

using LockTypes =
    ::testing::Types<TasLock, TtasLock, TtasBackoffLock, TicketLock,
                     AndersonLock, McsLock, ClhLock, RwSpinLock, std::mutex>;
TYPED_TEST_SUITE(LockTest, LockTypes);

TYPED_TEST(LockTest, MutualExclusionCounter) {
  TypeParam lock;
  std::uint64_t counter = 0;  // deliberately non-atomic
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;

  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) {
      std::lock_guard<TypeParam> g(lock);
      ++counter;
    }
  });
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TYPED_TEST(LockTest, NoOverlapDetector) {
  TypeParam lock;
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  test::run_threads(4, [&](std::size_t) {
    for (int i = 0; i < 5000; ++i) {
      std::lock_guard<TypeParam> g(lock);
      if (inside.fetch_add(1, std::memory_order_acq_rel) != 0) {
        overlap.store(true, std::memory_order_relaxed);
      }
      inside.fetch_sub(1, std::memory_order_acq_rel);
    }
  });
  EXPECT_FALSE(overlap.load());
}

TYPED_TEST(LockTest, SequentialLockUnlockRepeats) {
  TypeParam lock;
  for (int i = 0; i < 1000; ++i) {
    lock.lock();
    lock.unlock();
  }
  SUCCEED();
}

// try_lock contract, for the locks that provide it.
template <typename L>
class TryLockTest : public ::testing::Test {};

using TryLockTypes = ::testing::Types<TasLock, TtasLock, TtasBackoffLock,
                                      TicketLock, McsLock, RwSpinLock>;
TYPED_TEST_SUITE(TryLockTest, TryLockTypes);

TYPED_TEST(TryLockTest, TryLockFailsWhenHeldSucceedsWhenFree) {
  TypeParam lock;
  EXPECT_TRUE(lock.try_lock());
  std::thread other([&] { EXPECT_FALSE(lock.try_lock()); });
  other.join();
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

// ---------- reader-writer lock ----------

TEST(RwSpinLock, ReadersRunConcurrently) {
  // Deterministic overlap witness: all readers must be able to hold the
  // shared lock at the same time — they all enter, then rendezvous at a
  // barrier *inside* the critical section.  A lock that serialized readers
  // would deadlock here (and the test would time out).
  RwSpinLock lock;
  constexpr std::size_t kReaders = 4;
  SpinBarrier inside(kReaders);
  std::atomic<int> concurrent{0};
  int max_seen = 0;
  test::run_threads(kReaders, [&](std::size_t idx) {
    std::shared_lock<RwSpinLock> g(lock);
    concurrent.fetch_add(1, std::memory_order_relaxed);
    inside.arrive_and_wait();
    if (idx == 0) max_seen = concurrent.load(std::memory_order_relaxed);
    inside.arrive_and_wait();
  });
  EXPECT_EQ(max_seen, static_cast<int>(kReaders));
}

TEST(RwSpinLock, WriterExcludesReadersAndWriters) {
  RwSpinLock lock;
  std::uint64_t data = 0;
  std::atomic<bool> torn{false};
  test::run_threads(6, [&](std::size_t idx) {
    if (idx < 2) {  // writers
      for (int i = 0; i < 20000; ++i) {
        std::lock_guard<RwSpinLock> g(lock);
        ++data;
      }
    } else {  // readers
      for (int i = 0; i < 20000; ++i) {
        std::shared_lock<RwSpinLock> g(lock);
        const std::uint64_t a = data;
        const std::uint64_t b = data;
        if (a != b) torn.store(true);
      }
    }
  });
  EXPECT_EQ(data, 40000u);
  EXPECT_FALSE(torn.load());
}

TEST(RwSpinLock, TryLockSharedFailsUnderWriter) {
  RwSpinLock lock;
  lock.lock();
  std::thread t([&] {
    EXPECT_FALSE(lock.try_lock_shared());
    EXPECT_FALSE(lock.try_lock());
  });
  t.join();
  lock.unlock();
  EXPECT_TRUE(lock.try_lock_shared());
  lock.unlock_shared();
}

TEST(RwSpinLock, WritersNotStarvedByReaderStream) {
  RwSpinLock lock;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writes{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_lock<RwSpinLock> g(lock);
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 1000; ++i) {
      std::lock_guard<RwSpinLock> g(lock);
      writes.fetch_add(1, std::memory_order_relaxed);
    }
    stop.store(true, std::memory_order_relaxed);
  });
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(writes.load(), 1000u);  // writer completed despite reader stream
}

// ---------- ticket lock fairness ----------

TEST(TicketLock, FifoHandoffOrder) {
  // FIFO witness: waiters that took tickets in a known order must acquire
  // in that order.  Main holds the lock, releases threads into the wait
  // queue one at a time (sleeping long enough for each to take its ticket),
  // then unlocks and checks the acquisition order.
  TicketLock lock;
  constexpr int kWaiters = 4;
  std::vector<int> order;
  std::mutex order_mu;
  std::atomic<int> started{0};

  lock.lock();
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      started.fetch_add(1, std::memory_order_release);
      std::lock_guard<TicketLock> g(lock);
      std::lock_guard<std::mutex> og(order_mu);
      order.push_back(i);
    });
    // Let waiter i take its ticket before starting waiter i+1.
    while (started.load(std::memory_order_acquire) <= i) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  lock.unlock();
  for (auto& t : waiters) t.join();

  ASSERT_EQ(order.size(), static_cast<std::size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(order[i], i) << "ticket lock handoff was not FIFO";
  }
}

// ---------- seqlock ----------

struct Pair {
  std::uint64_t a;
  std::uint64_t b;
};

TEST(SeqLock, SingleThreadedReadWrite) {
  SeqLock<Pair> s(Pair{1, 1});
  Pair p = s.read();
  EXPECT_EQ(p.a, 1u);
  EXPECT_EQ(p.b, 1u);
  s.store(Pair{5, 5});
  p = s.read();
  EXPECT_EQ(p.a, 5u);
}

TEST(SeqLock, ReadersNeverSeeTornPairs) {
  SeqLock<Pair> s(Pair{0, 0});
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};

  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Pair p = s.read();
        if (p.a != p.b) torn.store(true);
      }
    });
  }
  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 200000; ++i) {
      s.write([&](Pair& p) {
        p.a = i;
        p.b = i;
      });
    }
    stop.store(true);
  });
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_FALSE(torn.load());
  const Pair last = s.read();
  EXPECT_EQ(last.a, 200000u);
}

TEST(SeqLock, ConcurrentWritersSerialize) {
  SeqLock<Pair> s(Pair{0, 0});
  test::run_threads(4, [&](std::size_t) {
    for (int i = 0; i < 10000; ++i) {
      s.write([](Pair& p) {
        ++p.a;
        ++p.b;
      });
    }
  });
  const Pair p = s.read();
  EXPECT_EQ(p.a, 40000u);
  EXPECT_EQ(p.b, 40000u);
}

}  // namespace
}  // namespace ccds

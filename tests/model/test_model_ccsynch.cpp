// Bounded model checking of the CC-Synch combining engine: on every explored
// interleaving no request may be lost or executed twice, results must route
// back to their submitters, the window-exhausted handoff must pass the
// combiner role without dropping the pending request, and a deliberately
// mis-ordered handoff (wait dropped before completed is set) must be caught
// with a replayable schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <set>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "model/scheduler.hpp"
#include "model/shim.hpp"
#include "queue/combining_queue.hpp"
#include "sync/ccsynch.hpp"

namespace ccds {
namespace {

using model::Options;
using model::Result;

// Two threads push increments through the engine; every explored schedule
// must apply each exactly once.  Covers both protocol roles: depending on
// interleaving a thread either self-serves (combiner-role-free tail),
// combines the other's request, or is served remotely.
TEST(ModelCcSynch, ConcurrentIncrementsExactAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    CcSynch<int> cc;
    model::thread t([&] {
      cc.apply([](int& v) { v += 1; });
      cc.apply([](int& v) { v += 10; });
    });
    cc.apply([](int& v) { v += 100; });
    cc.apply([](int& v) { v += 1000; });
    t.join();
    // Each delta distinct in decimal position: any lost or duplicated
    // request changes the digit pattern.
    CCDS_MODEL_ASSERT(cc.apply([](int& v) { return v; }) == 1111);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 10);
}

// Window = 1: every combine serves exactly one request, so any second
// pending request is delivered via the window-exhausted handoff (the owner
// wakes with completed == false and becomes the combiner).  That path must
// not lose the request.
TEST(ModelCcSynch, WindowExhaustedHandoffAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    CcSynch<int, 1> cc;
    model::thread t([&] { cc.apply([](int& v) { v += 1; }); });
    cc.apply([](int& v) { v += 10; });
    t.join();
    CCDS_MODEL_ASSERT(cc.apply([](int& v) { return v; }) == 11);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Result routing: concurrent fetch_adds must observe distinct priors — the
// combined-counter linearizability witness — on every schedule.
TEST(ModelCcSynch, FetchAddPriorsUniqueAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    CcSynch<int> cc;
    int p0 = -1;
    int p1 = -1;
    model::thread t([&] {
      p1 = cc.apply([](int& v) { return v++; });
    });
    p0 = cc.apply([](int& v) { return v++; });
    t.join();
    CCDS_MODEL_ASSERT(p0 != p1);
    CCDS_MODEL_ASSERT((p0 == 0 || p0 == 1) && (p1 == 0 || p1 == 1));
    CCDS_MODEL_ASSERT(cc.apply([](int& v) { return v; }) == 2);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// A batch is one combining request: both of its ops must land, and the
// concurrent single op must not interleave between them (witnessed by the
// probe seeing either none or both of the batch's deltas).
TEST(ModelCcSynch, BatchAppliesAtomicallyAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    CcSynch<int> cc;
    struct AddOp {
      int delta;
      void operator()(int& v) { v += delta; }
    };
    model::thread t([&] {
      AddOp ops[2] = {{1}, {10}};
      cc.apply_batch(std::span<AddOp>(ops));
    });
    const int seen = cc.apply([](int& v) {
      const int s = v;
      v += 100;
      return s;
    });
    t.join();
    CCDS_MODEL_ASSERT(seen == 0 || seen == 11);  // never a half-batch
    CCDS_MODEL_ASSERT(cc.apply([](int& v) { return v; }) == 111);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// The CombiningQueue front over the instrumented engine: enqueues from both
// threads are conserved — nothing lost, nothing duplicated.
TEST(ModelCcSynch, CombiningQueueConservationAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    CombiningQueue<std::uint64_t, CcSynch> q;
    model::thread t([&] { q.enqueue(1); });
    q.enqueue(2);
    t.join();
    std::multiset<std::uint64_t> seen;
    while (auto v = q.try_dequeue()) seen.insert(*v);
    CCDS_MODEL_ASSERT((seen == std::multiset<std::uint64_t>{1, 2}));
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Miniature CC-Synch with the combiner's handoff stores swapped: `wait` is
// dropped BEFORE `completed` is set.  A preemption in that window lets the
// served owner wake, read completed == false, conclude it inherited the
// combiner role, and re-execute its own already-executed request.  The
// explorer must find the window and hand back a replayable schedule — this
// is the ordering the real engine's combine() comments justify.
struct BrokenHandoffCcSynch {
  struct CCDS_CACHELINE_ALIGNED Node {
    Atomic<Node*> next{nullptr};
    Atomic<bool> wait{false};
    Atomic<bool> completed{false};
    int delta = 0;
  };

  BrokenHandoffCcSynch() {
    spare_[0] = &pool_[0];
    spare_[1] = &pool_[1];
    tail_.store(&pool_[2], std::memory_order_relaxed);  // relaxed: constructor, pre-publication
  }

  void add(std::size_t tid, int d) {
    Node* fresh = spare_[tid];
    // relaxed: published by the exchange's release, as in the real engine.
    fresh->next.store(nullptr, std::memory_order_relaxed);
    fresh->wait.store(true, std::memory_order_relaxed);
    fresh->completed.store(false, std::memory_order_relaxed);
    Node* cur = tail_.exchange(fresh, std::memory_order_acq_rel);
    spare_[tid] = cur;
    cur->delta = d;
    cur->next.store(fresh, std::memory_order_release);
    std::uint32_t spins = 0;
    while (cur->wait.load(std::memory_order_acquire)) spin_wait(spins);
    if (cur->completed.load(std::memory_order_relaxed)) return;
    Node* node = cur;
    for (;;) {
      Node* next = node->next.load(std::memory_order_acquire);
      if (next == nullptr) break;
      value += node->delta;
      // BUG: handoff stores swapped relative to the real engine — the owner
      // can observe wait == false with completed still false and duplicate
      // its request.
      node->wait.store(false, std::memory_order_release);
      node->completed.store(true, std::memory_order_relaxed);
      node = next;
    }
    node->wait.store(false, std::memory_order_release);
  }

  int value = 0;
  Atomic<Node*> tail_{nullptr};
  Node pool_[3];
  Node* spare_[2];
};

void broken_handoff_scenario() {
  BrokenHandoffCcSynch cc;
  model::thread t([&] { cc.add(1, 1); });
  cc.add(0, 1);
  t.join();
  CCDS_MODEL_ASSERT(cc.value == 2);
}

TEST(ModelCcSynch, BrokenHandoffCaughtWithReplayableSchedule) {
  Options opts;
  Result res = model::explore(opts, broken_handoff_scenario);
  ASSERT_FALSE(res.ok) << "explorer missed the swapped-handoff window";
  EXPECT_FALSE(res.schedule.empty());
  std::cout << "broken handoff caught: " << res.error
            << "\nreplayable schedule: " << res.schedule << "\n";

  Options replay;
  replay.replay = res.schedule;
  Result again = model::explore(replay, broken_handoff_scenario);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.executions, 1);
}

}  // namespace
}  // namespace ccds

// Bounded model checking of the swiss-table map's concurrency core: the
// seqlock read vs. locked write race, a two-thread cooperative rehash, and
// Wing–Gong linearizability over every explored schedule — plus a negative
// control that seeds the torn-read bug the seqlock protocol exists to
// prevent and demands the explorer catch it with a replayable schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/atomic.hpp"
#include "core/group_probe.hpp"
#include "hash/swiss_hash_map.hpp"
#include "linearizability.hpp"
#include "model/scheduler.hpp"
#include "model/shim.hpp"
#include "reclaim/leaky.hpp"

namespace ccds {
namespace {

using model::Options;
using model::Result;

// LeakyDomain keeps the schedule-point count down (no pin/unpin churn);
// the reclamation integration itself is exercised by the runtime tests.
using ModelMap =
    SwissHashMap<std::uint64_t, std::uint64_t, MixHash<std::uint64_t>,
                 LeakyDomain>;

// ---- seqlock read vs. locked write ----------------------------------------

// A reader races a writer that overwrites the same key.  In every explored
// schedule (including stale-read weak-memory executions) the reader must
// see exactly the old or the new value — never a torn or half-published
// one — and an untouched key must stay stable throughout.
TEST(ModelSwiss, SeqlockReadNeverTearsAgainstLockedWrite) {
  Options opts;
  opts.stale_read_bound = 2;  // swiss ops have many schedule points
  Result res = model::explore(opts, [] {
    ModelMap m(16);  // one group: reader and writer collide in it
    constexpr std::uint64_t kOld = 0x1111111111111111ull;
    constexpr std::uint64_t kNew = 0x2222222222222222ull;
    m.insert(1, kOld);
    m.insert(2, 7);
    model::thread writer([&] { m.insert(1, kNew); });
    const auto v1 = m.get(1);
    CCDS_MODEL_ASSERT(v1.has_value());
    CCDS_MODEL_ASSERT(*v1 == kOld || *v1 == kNew);
    const auto v2 = m.get(2);
    CCDS_MODEL_ASSERT(v2.has_value() && *v2 == 7);
    writer.join();
    CCDS_MODEL_ASSERT(m.get(1).value() == kNew);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 20);
}

// Erase racing a reader: the reader sees the mapping or misses it, and a
// re-read after join agrees with the erase having completed.
TEST(ModelSwiss, SeqlockReadVsEraseAllSchedules) {
  Options opts;
  opts.stale_read_bound = 2;
  Result res = model::explore(opts, [] {
    ModelMap m(16);
    m.insert(1, 42);
    model::thread eraser([&] { CCDS_MODEL_ASSERT(m.erase(1)); });
    const auto v = m.get(1);
    CCDS_MODEL_ASSERT(!v.has_value() || *v == 42);
    eraser.join();
    CCDS_MODEL_ASSERT(!m.get(1).has_value());
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// ---- cooperative rehash ----------------------------------------------------

// Two threads operate while a migration from a 1-group to a 2-group table
// is in flight: one drains/helps via its write, the other reads mid-rehash.
// No key may be lost, duplicated, or observed with a stale value once its
// overwrite completed.
TEST(ModelSwiss, CooperativeRehashTwoThreadsAllSchedules) {
  Options opts;
  opts.stale_read_bound = 1;  // rehash paths are long; trim weak-memory fanout
  Result res = model::explore(opts, [] {
    ModelMap m(16);
    m.insert(1, 10);
    m.insert(2, 20);
    m.grow();  // old (1-group) table now drains cooperatively
    model::thread helper([&] {
      // This write drains key 3's old chain and a migration quantum.
      CCDS_MODEL_ASSERT(m.insert(3, 30));
      const auto v = m.get(1);
      CCDS_MODEL_ASSERT(v.has_value() && *v == 10);
    });
    // Reads race the drain: both pre-grow keys must stay visible.
    const auto v1 = m.get(1);
    CCDS_MODEL_ASSERT(v1.has_value() && *v1 == 10);
    CCDS_MODEL_ASSERT(!m.insert(2, 21));  // overwrite, never a duplicate
    helper.join();
    CCDS_MODEL_ASSERT(m.get(1).value() == 10);
    CCDS_MODEL_ASSERT(m.get(2).value() == 21);
    CCDS_MODEL_ASSERT(m.get(3).value() == 30);
    CCDS_MODEL_ASSERT(m.size() == 3);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 20);
}

// ---- Wing–Gong linearizability ---------------------------------------------

// Record a two-thread history of puts/gets/erases on overlapping keys and
// require a legal linearization in every explored schedule (preemption
// bound 2, the checker's acceptance bar).
TEST(ModelSwiss, WingGongAcceptsAllExploredSchedules) {
  Options opts;
  opts.stale_read_bound = 1;
  Result res = model::explore(opts, [] {
    ModelMap m(16);
    lin::HistoryRecorder rec;
    lin::HistoryRecorder::Log la, lb;
    const auto bool_result = [](bool r) {
      return std::optional<std::uint64_t>(r ? 1 : 0);
    };
    model::thread other([&] {
      rec.record(
          la, lin::MapSpec::kPut, lin::MapSpec::pack(1, 5),
          [&] { return m.insert(1, 5); }, bool_result);
      rec.record(
          la, lin::MapSpec::kErase, 2, [&] { return m.erase(2); },
          bool_result);
    });
    rec.record(
        lb, lin::MapSpec::kPut, lin::MapSpec::pack(2, 9),
        [&] { return m.insert(2, 9); }, bool_result);
    rec.record(
        lb, lin::MapSpec::kGet, 1, [&] { return m.get(1); },
        [](const std::optional<std::uint64_t>& r) { return r; });
    other.join();
    std::vector<lin::Op> h(la);
    h.insert(h.end(), lb.begin(), lb.end());
    CCDS_MODEL_ASSERT(lin::Checker<lin::MapSpec>::linearizable(h));
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Wing–Gong must still reject illegal map histories under the model (the
// checker is not weakened by instrumentation).
TEST(ModelSwiss, WingGongStillRejectsBadMapHistories) {
  Options opts;
  Result res = model::explore(opts, [] {
    auto op = [](int kind, std::uint64_t arg, std::optional<std::uint64_t> r,
                 std::uint64_t inv, std::uint64_t rsp) {
      lin::Op o;
      o.kind = kind;
      o.arg = arg;
      o.result = r;
      o.invoke = inv;
      o.response = rsp;
      return o;
    };
    // Lost update: Put(1,5) completed strictly before Get(1) -> empty.
    std::vector<lin::Op> lost = {
        op(lin::MapSpec::kPut, lin::MapSpec::pack(1, 5), 1, 0, 1),
        op(lin::MapSpec::kGet, 1, std::nullopt, 2, 3),
    };
    CCDS_MODEL_ASSERT(!lin::Checker<lin::MapSpec>::linearizable(lost));
    // Resurrection: Erase(1)=true strictly before Get(1)=5 with no re-put.
    std::vector<lin::Op> ghost = {
        op(lin::MapSpec::kPut, lin::MapSpec::pack(1, 5), 1, 0, 1),
        op(lin::MapSpec::kErase, 1, 1, 2, 3),
        op(lin::MapSpec::kGet, 1, 5, 4, 5),
    };
    CCDS_MODEL_ASSERT(!lin::Checker<lin::MapSpec>::linearizable(ghost));
  });
  EXPECT_TRUE(res.ok) << res.error;
}

// ---- negative control: the torn read the seqlock exists to prevent --------

// A group-shaped record that follows the swiss READ protocol faithfully but
// whose writer omits the seqlock discipline: it stores the two payload
// words directly, without taking the lock bit or bumping the version.  The
// invariant "hi == 2*lo" then tears in plain interleavings, and the
// explorer must catch it and hand back a replayable schedule.
struct TornGroup {
  Atomic<std::uint64_t> version{0};
  Atomic<std::uint64_t> lo{0};
  Atomic<std::uint64_t> hi{0};
};

void broken_seqlock_scenario() {
  TornGroup g;
  model::thread writer([&] {
    // BUG (deliberate): payload stores with no odd-version window around
    // them.  swiss_hash_map's lock_group/unlock_group provide exactly the
    // window these stores are missing.
    g.lo.store(21, std::memory_order_relaxed);  // relaxed: bug under test
    g.hi.store(42, std::memory_order_relaxed);  // relaxed: bug under test
  });
  // Reader side: verbatim swiss find_in discipline.
  for (;;) {
    const std::uint64_t v1 = g.version.load(std::memory_order_acquire);
    if (v1 & 1) {
      model::yield_hint();
      continue;
    }
    const std::uint64_t lo = g.lo.load(std::memory_order_relaxed);  // relaxed: seqlock payload
    const std::uint64_t hi = g.hi.load(std::memory_order_relaxed);  // relaxed: seqlock payload
    ccds::atomic_thread_fence(std::memory_order_acquire);
    if (g.version.load(std::memory_order_relaxed) != v1) {  // relaxed: fenced
      model::yield_hint();
      continue;
    }
    CCDS_MODEL_ASSERT(hi == 2 * lo);  // torn: (21, 0) interleavings exist
    break;
  }
  writer.join();
}

TEST(ModelSwiss, TornReadBugCaughtWithReplayableSchedule) {
  Options opts;
  Result res = model::explore(opts, broken_seqlock_scenario);
  ASSERT_FALSE(res.ok) << "explorer failed to catch the seeded torn read";
  ASSERT_FALSE(res.schedule.empty());

  Options replay;
  replay.replay = res.schedule;
  Result again = model::explore(replay, broken_seqlock_scenario);
  EXPECT_FALSE(again.ok);  // the schedule deterministically reproduces it
  EXPECT_EQ(again.error, res.error);
}

}  // namespace
}  // namespace ccds

// Bounded model checking of the Treiber stack: conservation and
// linearizability over every explored schedule, plus the required negative
// test — a copy of the stack with its publication CAS weakened to relaxed
// must be caught with a replayable schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/atomic.hpp"
#include "linearizability.hpp"
#include "model/scheduler.hpp"
#include "model/shim.hpp"
#include "reclaim/leaky.hpp"
#include "stack/treiber_stack.hpp"

namespace ccds {
namespace {

using model::Options;
using model::Result;

// Every value pushed is popped exactly once or still present at the end —
// across ALL schedules with <= 2 preemptions and bounded weak-memory
// staleness.
TEST(ModelStack, TreiberConservationAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    TreiberStack<std::uint64_t, LeakyDomain> st;
    std::vector<std::uint64_t> popped;
    model::thread popper([&] {
      for (int i = 0; i < 2; ++i) {
        if (auto v = st.try_pop()) popped.push_back(*v);
      }
    });
    st.push(1);
    st.push(2);
    popper.join();
    std::multiset<std::uint64_t> seen(popped.begin(), popped.end());
    CCDS_MODEL_ASSERT(seen.size() == popped.size());  // no duplicates
    while (auto v = st.try_pop()) seen.insert(*v);
    CCDS_MODEL_ASSERT((seen == std::multiset<std::uint64_t>{1, 2}));
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 50);  // the bounded space is genuinely explored
}

// Satellite: the Wing–Gong checker runs under the model scheduler and must
// accept the recorded 2-thread history of every explored schedule.
TEST(ModelStack, WingGongAcceptsAllExploredTreiberSchedules) {
  Options opts;
  opts.stale_read_bound = 2;  // recorder ops add schedule points; keep bounded
  Result res = model::explore(opts, [] {
    TreiberStack<std::uint64_t, LeakyDomain> st;
    lin::HistoryRecorder rec;
    lin::HistoryRecorder::Log la, lb;
    model::thread pusher([&] {
      for (std::uint64_t i = 1; i <= 2; ++i) {
        rec.record_void(la, lin::StackSpec::kPush, i, [&] { st.push(i); });
      }
    });
    for (int i = 0; i < 2; ++i) {
      rec.record(
          lb, lin::StackSpec::kPop, 0, [&] { return st.try_pop(); },
          [](const std::optional<std::uint64_t>& r) {
            return r ? std::optional<std::uint64_t>(*r) : std::nullopt;
          });
    }
    pusher.join();
    std::vector<lin::Op> h(la);
    h.insert(h.end(), lb.begin(), lb.end());
    CCDS_MODEL_ASSERT(lin::Checker<lin::StackSpec>::linearizable(h));
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Satellite: the checker itself must keep rejecting a hand-built illegal
// stack history when invoked under the model scheduler.
TEST(ModelStack, WingGongStillRejectsBadHistoryUnderModel) {
  Options opts;
  Result res = model::explore(opts, [] {
    auto op = [](int kind, std::uint64_t arg, std::optional<std::uint64_t> r,
                 std::uint64_t inv, std::uint64_t rsp) {
      lin::Op o;
      o.kind = kind;
      o.arg = arg;
      o.result = r;
      o.invoke = inv;
      o.response = rsp;
      return o;
    };
    // Push(1);Push(2) strictly ordered, then Pop()=1 before Pop()=2: FIFO,
    // not LIFO — must be rejected.
    std::vector<lin::Op> h = {
        op(lin::StackSpec::kPush, 1, std::nullopt, 0, 1),
        op(lin::StackSpec::kPush, 2, std::nullopt, 2, 3),
        op(lin::StackSpec::kPop, 0, 1, 4, 5),
        op(lin::StackSpec::kPop, 0, 2, 6, 7),
    };
    CCDS_MODEL_ASSERT(!lin::Checker<lin::StackSpec>::linearizable(h));
  });
  EXPECT_TRUE(res.ok) << res.error;
}

// A Treiber stack whose CASes are weakened to relaxed: without the release
// edge on push's publication CAS, a popper can acquire the new head yet read
// a stale (nullptr) `next`, swinging head past live nodes — values vanish.
// Nodes are owned by a side list so the negative test is ASan-clean.
class BuggyTreiberStack {
 public:
  void push(std::uint64_t v) {
    Node* n = new Node;
    n->value = v;
    owned_.push_back(n);
    Node* h = head_.load(std::memory_order_relaxed);
    for (;;) {
      n->next.store(h, std::memory_order_relaxed);
      if (head_.compare_exchange_weak(h, n, std::memory_order_relaxed,  // BUG
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  std::optional<std::uint64_t> try_pop() {
    for (;;) {
      Node* h = head_.load(std::memory_order_acquire);
      if (h == nullptr) return std::nullopt;
      Node* next = h->next.load(std::memory_order_relaxed);
      if (head_.compare_exchange_strong(h, next, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
        return h->value;
      }
    }
  }

  ~BuggyTreiberStack() {
    for (Node* n : owned_) delete n;
  }

 private:
  struct Node {
    Atomic<Node*> next{nullptr};
    std::uint64_t value = 0;
  };
  Atomic<Node*> head_{nullptr};
  std::vector<Node*> owned_;  // single pusher appends; freed at destruction
};

void buggy_treiber_scenario() {
  BuggyTreiberStack st;
  std::vector<std::uint64_t> popped;
  model::thread popper([&] {
    for (int i = 0; i < 2; ++i) {
      if (auto v = st.try_pop()) popped.push_back(*v);
    }
  });
  st.push(1);
  st.push(2);
  popper.join();
  std::multiset<std::uint64_t> seen(popped.begin(), popped.end());
  CCDS_MODEL_ASSERT(seen.size() == popped.size());
  while (auto v = st.try_pop()) seen.insert(*v);
  CCDS_MODEL_ASSERT((seen == std::multiset<std::uint64_t>{1, 2}));
}

// Acceptance criterion: the deliberately seeded relaxed-CAS bug is caught,
// the schedule is printed, and replaying it reproduces the failure
// deterministically.
TEST(ModelStack, SeededRelaxedCasBugCaughtWithReplayableSchedule) {
  Options opts;
  Result res = model::explore(opts, buggy_treiber_scenario);
  ASSERT_FALSE(res.ok) << "explorer missed the seeded memory-order bug";
  EXPECT_FALSE(res.schedule.empty());
  std::cout << "seeded bug caught: " << res.error
            << "\nreplayable schedule: " << res.schedule << "\ntrace:\n"
            << res.trace;

  Options replay;
  replay.replay = res.schedule;
  Result again = model::explore(replay, buggy_treiber_scenario);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.executions, 1);
  EXPECT_EQ(again.error, res.error);
}

}  // namespace
}  // namespace ccds

// Bounded model checking of the QSBR announcement protocol
// (reclaim/qsbr.hpp), mirroring test_model_reclaim.cpp's treatment of the
// hazard and epoch domains.
//
// QSBR's safety rests on the same advance invariant as epochs — the global
// epoch never moves more than ONE step past an epoch a thread is validly
// announced at — but the announcement happens at ONLINING (first guard /
// lease refresh), not per operation.  The onlining must be VALIDATED: store
// the observed epoch, then re-read the global epoch seq_cst and loop until
// it matched.  The seeded bug here skips that validating re-read (the
// "missed quiescence": a sweep that ran before the announcement became
// visible advances past a thread that believes itself online, and a second
// advance frees nodes the thread can still reach).
#include <gtest/gtest.h>

#include <cstdint>

#include "core/asymmetric_fence.hpp"
#include "core/atomic.hpp"
#include "model/scheduler.hpp"
#include "model/shim.hpp"
#include "reclaim/qsbr.hpp"

namespace ccds {
namespace {

using model::Options;
using model::Result;

// ---------------------------------------------------------------------------
// Onlining Dekker, distilled.  advancer = try_advance (heavy barrier +
// sweep + CAS), run twice so a missed announcement can advance TWICE past
// the onliner — one advance past a fresh announcement is legal.
// ---------------------------------------------------------------------------

void qsbr_dekker(bool onliner_validates) {
  Atomic<std::uint64_t> global{2};
  constexpr std::uint64_t kOffline = ~0ull;
  Atomic<std::uint64_t> slot{kOffline};

  model::thread advancer([&] {
    for (int round = 0; round < 2; ++round) {
      const std::uint64_t e = global.load(std::memory_order_acquire);
      asymmetric_heavy();
      const std::uint64_t l = slot.load(std::memory_order_acquire);
      if (l == kOffline || l == e) {
        std::uint64_t expected = e;
        global.compare_exchange_strong(expected, e + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed);  // relaxed: failure = raced, fine
      }
    }
  });

  // Onliner: a thread opening its first guard announces the observed epoch.
  std::uint64_t e;
  for (;;) {
    e = global.load(std::memory_order_acquire);
    slot.store(e, std::memory_order_release);
    asymmetric_light();
    if (!onliner_validates) break;  // SEEDED BUG: claim being online without
                                    // proof the sweep can see the claim
    if (global.load(std::memory_order_seq_cst) == e) break;
  }
  // While (validly) announced at e, the epoch may advance to e+1 but never
  // further — the grace-period arithmetic (stamp + 3 <= E) rests on this.
  const std::uint64_t g1 = global.load(std::memory_order_seq_cst);
  CCDS_MODEL_ASSERT(g1 <= e + 1);
  const std::uint64_t g2 = global.load(std::memory_order_seq_cst);
  CCDS_MODEL_ASSERT(g2 <= e + 1);
  slot.store(kOffline, std::memory_order_release);
  advancer.join();
}

TEST(ModelQsbr, ValidatedOnliningAdvanceInvariantAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] { qsbr_dekker(true); });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 10);
}

TEST(ModelQsbr, UnvalidatedOnliningMissedQuiescenceBugCaught) {
  Options opts;
  Result res = model::explore(opts, [] { qsbr_dekker(false); });
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("CCDS_MODEL_ASSERT"), std::string::npos)
      << res.error;
  EXPECT_FALSE(res.schedule.empty());

  // The recorded schedule replays the exact failing interleaving.
  Options replay;
  replay.replay = res.schedule;
  Result again = model::explore(replay, [] { qsbr_dekker(false); });
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.executions, 1);
  EXPECT_EQ(again.error, res.error);
}

// ---------------------------------------------------------------------------
// The REAL QsbrDomain under the model: onlining (validated announce),
// boundary checkpoints, try_advance's heavy barrier + registration-ceiling
// sweep, and the limbo-bag grace arithmetic, explored end-to-end.
// ---------------------------------------------------------------------------

struct FreeLog {
  Atomic<void*> last{nullptr};
};

struct TrackedNode {
  FreeLog* log;
  explicit TrackedNode(FreeLog* l) : log(l) {}
  ~TrackedNode() {
    log->last.store(this, std::memory_order_seq_cst);  // seq_cst: free witness must be schedule-ordered
  }
};

TEST(ModelQsbr, RealQsbrDomainNoUseAfterFreeAllSchedules) {
  Options opts;
  opts.stale_read_bound = 2;  // domain code has many schedule points
  Result res = model::explore(opts, [] {
    FreeLog log;  // before the domain: freed nodes' destructors write it
    QsbrDomain dom;
    Atomic<TrackedNode*> src{new TrackedNode(&log)};

    model::thread reader([&] {
      auto g = dom.guard();  // onlines this thread (validated announce)
      TrackedNode* p = g.protect(0, src);  // plain acquire load — the point
      CCDS_MODEL_ASSERT(p != nullptr);
      CCDS_MODEL_ASSERT(log.last.load(std::memory_order_seq_cst) != p);
    });

    TrackedNode* old =
        src.exchange(new TrackedNode(&log), std::memory_order_acq_rel);
    dom.retire(old);
    // collect(): quiescent checkpoint + try_advance (heavy + bounded sweep)
    // + bag scan.  While the reader is between onlining and its boundary
    // the epoch is capped one past its announcement, so the stamp can never
    // age out and the node must survive.
    dom.collect();
    dom.collect();
    reader.join();
    dom.retire(src.load(std::memory_order_acquire));
    // Domain destructor frees the remainder after the reader is done.
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_GE(res.executions, 20);
}

}  // namespace
}  // namespace ccds

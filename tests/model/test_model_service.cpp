// Bounded model checking of the shard-per-core serving tier
// (service/kv_service.hpp): on every explored interleaving the mailbox
// pipeline must conserve requests (nothing lost or double-applied across
// SpscRing mailboxes and the MpmcQueue fallback), completions must be
// published strictly AFTER application (a requester that observes ready()
// observes its effect in the shard map), and the single-owner discipline
// must actually be load-bearing — a seeded wrong-shard-route bug breaks a
// conservation witness on some schedule and is caught with a replayable
// trace.
//
// Tractability: the real service is explored with spawn_workers = false
// (model threads pump manually — std::thread cannot run under the
// explorer) and LeakyDomain partitions (no reclamation schedule points,
// same choice as test_model_swiss.cpp).  The SpscRing mailboxes use
// ccds::Atomic, so producer/consumer index races ARE explored; the
// MpmcQueue fallback and the stats words are std::atomic by design —
// functionally exercised, but contributing no interleaving fanout.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "model/scheduler.hpp"
#include "model/shim.hpp"
#include "queue/spsc_ring.hpp"
#include "reclaim/leaky.hpp"
#include "service/kv_service.hpp"

namespace ccds {
namespace {

using model::Options;
using model::Result;

using ModelSvc =
    KvService<std::uint64_t, std::uint64_t, MixHash<std::uint64_t>,
              LeakyDomain>;

ModelSvc::Config model_config() {
  ModelSvc::Config cfg;
  cfg.shards = 2;
  cfg.client_slots = 1;
  cfg.ring_capacity = 4;
  cfg.fallback_capacity = 4;
  cfg.drain_batch = 4;
  cfg.initial_slots_per_shard = 16;  // one group per shard: no rehash paths
  cfg.spawn_workers = false;
  return cfg;
}

// Pump shard s until it reports no work, with a hard bound so a broken
// pump cannot spin the explorer into its step budget.
void pump_dry(ModelSvc& svc, std::size_t s) {
  for (int i = 0; i < 8; ++i) {
    if (svc.pump_shard(s) == 0) return;
  }
  CCDS_MODEL_ASSERT(false && "pump never drained");
}

// Two fire-and-forget puts race a concurrently pumping owner: whatever the
// interleaving of submit vs. drain, after a final dry pump both effects are
// in the shard maps, applied exactly once, and none leaked into the wrong
// partition.
TEST(ModelService, RequestConservationAcrossMailboxesAllSchedules) {
  Options opts;
  opts.stale_read_bound = 1;  // swiss + ring paths are long; trim wm fanout
  Result res = model::explore(opts, [] {
    ModelSvc svc(model_config());
    auto c = svc.make_client();
    CCDS_MODEL_ASSERT(!c.uses_fallback());

    // Two keys landing in different shards (verified below), both written
    // without completion slots so nothing blocks the producer.
    model::thread producer([&] {
      c.submit(1, 11, ModelSvc::Op::kPut, nullptr);
      c.submit(2, 22, ModelSvc::Op::kPut, nullptr);
    });
    // Main races the producer as the pumping owner of both shards.
    svc.pump_shard(0);
    svc.pump_shard(1);
    producer.join();
    pump_dry(svc, 0);
    pump_dry(svc, 1);

    CCDS_MODEL_ASSERT(svc.size() == 2);
    const std::uint64_t applied =
        svc.shard_stats(0).ops + svc.shard_stats(1).ops;
    CCDS_MODEL_ASSERT(applied == 2);  // nothing lost, nothing double-applied
    CCDS_MODEL_ASSERT(svc.route_violations() == 0);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 10);
}

// Complete-after-apply on the REAL pipeline: the instant a requester
// observes ready(), its put must be visible in the owning shard's map —
// OneShot's release/acquire pairing plus the pump's apply-all-then-
// complete-all ordering, checked on every schedule.
TEST(ModelService, CompleteAfterApplyAllSchedules) {
  Options opts;
  opts.stale_read_bound = 1;
  Result res = model::explore(opts, [] {
    ModelSvc svc(model_config());
    auto c = svc.make_client();
    const std::uint64_t key = 7;

    model::thread requester([&] {
      OneShot<ModelSvc::Response> done;
      c.put_async(key, 70, &done);
      const auto r = done.take();  // spin_wait: yields to the explorer
      CCDS_MODEL_ASSERT(!r.found);  // key was new
      // The completion was observed, so the apply must already be in the
      // shard map — the invariant this whole test exists for.
      const auto s = svc.shard_of(MixHash<std::uint64_t>{}(key));
      const auto v = svc.shard_map(s).get(key);
      CCDS_MODEL_ASSERT(v.has_value() && *v == 70);
    });
    // Owner pumps until the one request has been applied; the yield hint
    // hands the explorer a scheduling point whenever a pump comes up empty
    // (same discipline as every model-safe wait loop).
    std::uint32_t spins = 0;
    while (svc.shard_stats(0).ops + svc.shard_stats(1).ops == 0) {
      if (svc.pump_shard(0) + svc.pump_shard(1) == 0) spin_wait(spins);
    }
    requester.join();
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 10);
}

// Conservation through the shared fallback path: a second client (slot
// budget exhausted) submits through the per-shard MpmcQueue while the ring
// client and the pumping owner run — both clients' effects land exactly
// once.
TEST(ModelService, FallbackClientConservationAllSchedules) {
  Options opts;
  opts.stale_read_bound = 1;
  Result res = model::explore(opts, [] {
    ModelSvc svc(model_config());
    auto ring_client = svc.make_client();
    auto fb_client = svc.make_client();
    CCDS_MODEL_ASSERT(!ring_client.uses_fallback());
    CCDS_MODEL_ASSERT(fb_client.uses_fallback());

    model::thread producer([&] {
      fb_client.submit(1, 100, ModelSvc::Op::kPut, nullptr);
    });
    ring_client.submit(2, 200, ModelSvc::Op::kPut, nullptr);
    svc.pump_shard(0);
    svc.pump_shard(1);
    producer.join();
    pump_dry(svc, 0);
    pump_dry(svc, 1);

    CCDS_MODEL_ASSERT(svc.size() == 2);
    std::uint64_t fallback_ops = 0;
    for (std::size_t s = 0; s < svc.shards(); ++s) {
      fallback_ops += svc.shard_stats(s).fallback_ops;
    }
    CCDS_MODEL_ASSERT(fallback_ops == 1);  // exactly the fallback client's op
    CCDS_MODEL_ASSERT(svc.route_violations() == 0);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// ---------------------------------------------------------------------------
// Seeded bug: wrong-shard routing.
//
// A miniature sharded KV in the service's mold — per-shard SpscRing
// mailbox, single-owner workers, and a shard "map" whose updates are a
// deliberately non-atomic load-add-store, SAFE exactly while the
// single-owner discipline holds (the real tier's SwissHashMap partitions
// are safe regardless; the mini-map makes ownership itself the correctness
// boundary so a routing bug becomes an observable lost update rather than
// silent key partitioning).  The seeded router sends one of shard 0's keys
// to shard 1's mailbox; on some interleaving both workers run the
// read-modify-write on shard 0's cell concurrently, an increment is lost,
// and the conservation witness fails with a replayable schedule.
// ---------------------------------------------------------------------------

template <bool kMisroute>
struct MiniShardedKv {
  static std::size_t shard_of(int key) { return key & 1; }

  void submit(int key) {
    std::size_t s = shard_of(key);
    if constexpr (kMisroute) {
      if (key == 2) s = 1;  // BUG: key 2 belongs to shard 0
    }
    const bool pushed = ring[s].try_push(key);
    CCDS_MODEL_ASSERT(pushed);  // capacity covers the scenario
  }

  void pump(std::size_t s) {
    ring[s].drain(
        [&](int&& key) {
          // Owner-exclusive by contract: plain load-add-store.
          const std::size_t owner = shard_of(key);
          const int v = cell[owner].load(std::memory_order_relaxed);
          cell[owner].store(v + 1, std::memory_order_relaxed);
        },
        4);
  }

  SpscRing<int> ring[2]{SpscRing<int>(4), SpscRing<int>(4)};
  Atomic<int> cell[2]{};
};

template <bool kMisroute>
void mini_routing_scenario() {
  MiniShardedKv<kMisroute> kv;
  kv.submit(0);  // shard 0's key, routed correctly
  kv.submit(2);  // shard 0's key, misrouted to shard 1 when seeded
  model::thread w1([&] { kv.pump(1); });
  kv.pump(0);
  w1.join();
  // Both applications targeted shard 0's cell; with single-owner routing
  // they are sequential and conserve, with the misroute they race.
  CCDS_MODEL_ASSERT(kv.cell[0].load(std::memory_order_relaxed) == 2);
  CCDS_MODEL_ASSERT(kv.cell[1].load(std::memory_order_relaxed) == 0);
}

TEST(ModelService, MisroutedRequestCaughtWithReplayableSchedule) {
  Options opts;
  Result res = model::explore(opts, mini_routing_scenario<true>);
  ASSERT_FALSE(res.ok) << "explorer missed the misroute lost-update window";
  EXPECT_FALSE(res.schedule.empty());
  std::cout << "wrong-shard route caught: " << res.error
            << "\nreplayable schedule: " << res.schedule << "\n";

  Options replay;
  replay.replay = res.schedule;
  Result again = model::explore(replay, mini_routing_scenario<true>);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.executions, 1);
}

TEST(ModelService, CorrectRoutingConservesAllSchedules) {
  Options opts;
  Result res = model::explore(opts, mini_routing_scenario<false>);
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

}  // namespace
}  // namespace ccds

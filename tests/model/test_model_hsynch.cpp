// Bounded model checking of the hierarchical H-Synch engine: on every
// explored interleaving requests published on per-node lists must be
// applied exactly once, node winners from different nodes must serialize
// through the global lock, and the window-exhausted node-winner handoff
// must pass the combiner role without dropping the pending request.  A
// deliberately broken miniature — whose node winner serves its list WITHOUT
// taking the global lock — must be caught with a replayable schedule,
// while the identical miniature WITH the lock passes all schedules: the
// pair pins down that the global-lock bracket is exactly what makes
// cross-node combining sound.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "core/topology.hpp"
#include "model/scheduler.hpp"
#include "model/shim.hpp"
#include "sync/hsynch.hpp"
#include "sync/spinlock.hpp"

namespace ccds {
namespace {

using model::Options;
using model::Result;

std::size_t tid_mod2(std::size_t tid) { return tid % 2; }
std::size_t all_node_zero(std::size_t) { return 0; }

// Two threads on two DIFFERENT topology nodes: each becomes its own node's
// winner, and the two winners must serialize on the global lock.  Distinct
// decimal digits make any lost or duplicated request visible in the sum.
TEST(ModelHSynch, CrossNodeIncrementsExactAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    topology::ScopedOverride ov(2, &tid_mod2);
    HSynch<int> h;
    model::thread t([&] { h.apply([](int& v) { v += 1; }); });
    h.apply([](int& v) { v += 10; });
    t.join();
    CCDS_MODEL_ASSERT(h.apply([](int& v) { return v; }) == 11);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 10);
}

// Both threads on ONE node with Window = 1: every node-winner episode
// serves exactly one request, so a second pending request is delivered via
// the handoff — which in H-Synch happens AFTER the global lock is released.
// The woken owner must re-acquire the lock and serve; the request must not
// be lost and the sum must be exact on every schedule.
TEST(ModelHSynch, NodeWinnerHandoffAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    topology::ScopedOverride ov(1, &all_node_zero);
    HSynch<int, 1> h;
    model::thread t([&] { h.apply([](int& v) { v += 1; }); });
    h.apply([](int& v) { v += 10; });
    t.join();
    CCDS_MODEL_ASSERT(h.apply([](int& v) { return v; }) == 11);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Result routing across nodes: concurrent fetch_adds from different nodes
// must observe distinct priors on every schedule.
TEST(ModelHSynch, FetchAddPriorsUniqueAcrossNodesAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    topology::ScopedOverride ov(2, &tid_mod2);
    HSynch<int> h;
    int p0 = -1;
    int p1 = -1;
    model::thread t([&] { p1 = h.apply([](int& v) { return v++; }); });
    p0 = h.apply([](int& v) { return v++; });
    t.join();
    CCDS_MODEL_ASSERT(p0 != p1);
    CCDS_MODEL_ASSERT((p0 == 0 || p0 == 1) && (p1 == 0 || p1 == 1));
    CCDS_MODEL_ASSERT(h.apply([](int& v) { return v; }) == 2);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Miniature H-Synch: two single-thread nodes, each with the real swap-append
// publication, and a node winner that serves its own list.  The state is an
// Atomic<int> mutated as load-then-store so the explorer can preempt INSIDE
// a winner's read-modify-write.  Template knob: serve under the global lock
// (the real engine's bracket) or without it (the seeded bug).
template <bool TakeGlobalLock>
struct MiniHSynch {
  struct CCDS_CACHELINE_ALIGNED Node {
    Atomic<Node*> next{nullptr};
    Atomic<bool> wait{false};
    Atomic<bool> completed{false};
    int delta = 0;
  };

  MiniHSynch() {
    for (int n = 0; n < 2; ++n) {
      spare_[n] = &pool_[n][0];
      // relaxed: constructor, pre-publication.
      tail_[n].store(&pool_[n][1], std::memory_order_relaxed);
    }
  }

  void add(std::size_t node, int d) {
    Node* fresh = spare_[node];
    // relaxed: published by the exchange's release, as in the real engine.
    fresh->next.store(nullptr, std::memory_order_relaxed);
    fresh->wait.store(true, std::memory_order_relaxed);
    fresh->completed.store(false, std::memory_order_relaxed);
    Node* cur = tail_[node].exchange(fresh, std::memory_order_acq_rel);
    spare_[node] = cur;
    cur->delta = d;
    cur->next.store(fresh, std::memory_order_release);
    std::uint32_t spins = 0;
    while (cur->wait.load(std::memory_order_acquire)) spin_wait(spins);
    if (cur->completed.load(std::memory_order_relaxed)) return;
    // Node winner: serve the local list.  BUG when !TakeGlobalLock — two
    // winners from different nodes interleave inside the read-modify-write
    // below and lose an update.
    if constexpr (TakeGlobalLock) global_.lock();
    Node* nd = cur;
    for (;;) {
      Node* nx = nd->next.load(std::memory_order_acquire);
      if (nx == nullptr) break;
      // relaxed: the global lock (when taken) orders winners; the point of
      // the bug variant is exactly that nothing else does.
      const int s = value_.load(std::memory_order_relaxed);
      value_.store(s + nd->delta, std::memory_order_relaxed);
      nd->completed.store(true, std::memory_order_relaxed);
      nd->wait.store(false, std::memory_order_release);
      nd = nx;
    }
    if constexpr (TakeGlobalLock) global_.unlock();
    nd->wait.store(false, std::memory_order_release);
  }

  int total() { return value_.load(std::memory_order_relaxed); }

  TtasLock global_;
  Atomic<int> value_{0};
  Atomic<Node*> tail_[2];
  Node pool_[2][2];
  Node* spare_[2];
};

template <bool TakeGlobalLock>
void two_node_winner_scenario() {
  MiniHSynch<TakeGlobalLock> h;
  model::thread t([&] { h.add(1, 1); });
  h.add(0, 1);
  t.join();
  CCDS_MODEL_ASSERT(h.total() == 2);
}

TEST(ModelHSynch, UnlockedNodeWinnerCaughtWithReplayableSchedule) {
  Options opts;
  Result res = model::explore(opts, two_node_winner_scenario<false>);
  ASSERT_FALSE(res.ok) << "explorer missed the unlocked cross-node window";
  EXPECT_FALSE(res.schedule.empty());
  std::cout << "unlocked node winner caught: " << res.error
            << "\nreplayable schedule: " << res.schedule << "\n";

  Options replay;
  replay.replay = res.schedule;
  Result again = model::explore(replay, two_node_winner_scenario<false>);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.executions, 1);
}

TEST(ModelHSynch, LockedNodeWinnerPassesAllSchedules) {
  Options opts;
  Result res = model::explore(opts, two_node_winner_scenario<true>);
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

}  // namespace
}  // namespace ccds

// Bounded model checking of the sorted-batch combining pipeline
// (skiplist/batched_skiplist.hpp): on every explored interleaving a batch
// must apply atomically (no probe sees a partial batch), every op's result
// slot must be written before its submitter's wait drops, merged combining
// episodes (two sorted runs gathered into one application) must conserve
// both runs' effects, and a deliberately mis-ordered mini-combiner that
// completes its members BEFORE running the merged application must be
// caught with a replayable schedule.
//
// The sequential shards use plain pointers (no Atomics), so the only
// schedule points are the combining engine's — whole-structure exploration
// stays tractable, unlike the lock-free skiplist.  kKeyed tower draws keep
// the explored code RNG-free (replay needs determinism).
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <span>
#include <vector>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "model/scheduler.hpp"
#include "model/shim.hpp"
#include "core/topology.hpp"
#include "skiplist/batched_map.hpp"
#include "skiplist/batched_skiplist.hpp"
#include "sync/engines.hpp"
#include "sync/spinlock.hpp"

namespace ccds {
namespace {

using model::Options;
using model::Result;

using ModelSet = BatchedSkipListSet<int, std::less<int>, CcSynch,
                                    SkipListLevels::kKeyed>;
using SetOp = ModelSet::Op;

// A two-op batch vs. a two-op probe batch: the probe must see none or both
// of the batch's keys on every schedule — batch atomicity across keys.
TEST(ModelBatched, BatchAppliesAtomicallyAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    ModelSet s;
    model::thread t([&] {
      SetOp ops[2] = {SetOp::insert(1), SetOp::insert(2)};
      s.apply_batch(std::span<SetOp>(ops, 2));
      CCDS_MODEL_ASSERT(ops[0].result && ops[1].result);
    });
    SetOp probe[2] = {SetOp::contains(1), SetOp::contains(2)};
    s.apply_batch(std::span<SetOp>(probe, 2));
    t.join();
    const int hits = (probe[0].result ? 1 : 0) + (probe[1].result ? 1 : 0);
    CCDS_MODEL_ASSERT(hits == 0 || hits == 2);
    CCDS_MODEL_ASSERT(s.contains(1) && s.contains(2));
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 10);
}

// Result delivery: a batch with a duplicated key must fill EVERY slot per
// last-writer-wins before the submitting call returns, on every schedule —
// including the ones where the other thread's single op merges into the
// same combining episode.
TEST(ModelBatched, ResultSlotsFilledLwwAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    ModelSet s;
    model::thread t([&] { CCDS_MODEL_ASSERT(s.insert(9)); });
    SetOp ops[3] = {SetOp::insert(5), SetOp::erase(5), SetOp::contains(5)};
    s.apply_batch(std::span<SetOp>(ops, 3));
    t.join();
    CCDS_MODEL_ASSERT(ops[0].result);   // 5 was absent
    CCDS_MODEL_ASSERT(ops[1].result);   // the insert before it landed
    CCDS_MODEL_ASSERT(!ops[2].result);  // erased again by the same batch
    CCDS_MODEL_ASSERT(!s.contains(5));
    CCDS_MODEL_ASSERT(s.contains(9));
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Two sorted runs submitted concurrently, typed over EVERY enrolled engine
// (sync/engines.hpp): whether they schedule into one merged episode (list
// engines), a slot-scan group (FlatCombiner), a node-winner episode under
// a 2-node topology (HSynch), or one copy-apply-SC cell (PSim), both runs'
// effects and results must be conserved on every schedule.
std::size_t model_tid_mod2(std::size_t tid) { return tid % 2; }

template <typename Set>
class ModelBatchedEngineTest : public ::testing::Test {};
#define CCDS_WRAP_MSET(E) \
  BatchedSkipListSet<int, std::less<int>, E, SkipListLevels::kKeyed>
using ModelEngineSets =
    ::testing::Types<CCDS_COMBINER_ENGINE_LIST(CCDS_WRAP_MSET)>;
#undef CCDS_WRAP_MSET
TYPED_TEST_SUITE(ModelBatchedEngineTest, ModelEngineSets);

TYPED_TEST(ModelBatchedEngineTest, ConcurrentRunsConserveAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    using Op = typename TypeParam::Op;
    topology::ScopedOverride ov(2, &model_tid_mod2);
    TypeParam s;
    model::thread t([&] {
      Op ops[2] = {Op::insert(1), Op::insert(3)};
      s.apply_batch(std::span<Op>(ops, 2));
      CCDS_MODEL_ASSERT(ops[0].result && ops[1].result);
    });
    Op ops[2] = {Op::insert(2), Op::insert(4)};
    s.apply_batch(std::span<Op>(ops, 2));
    CCDS_MODEL_ASSERT(ops[0].result && ops[1].result);
    t.join();
    CCDS_MODEL_ASSERT(s.size() == 4);
    CCDS_MODEL_ASSERT(s.contains(1) && s.contains(2) && s.contains(3) &&
                      s.contains(4));
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// The map veneer end to end: a put and a get racing; the get sees the full
// stored entry or nothing — never a torn value.
TEST(ModelBatched, MapGetSeesWholeEntryAllSchedules) {
  using Map = BatchedMap<int, int, std::less<int>, CcSynch,
                         SkipListLevels::kKeyed>;
  Options opts;
  Result res = model::explore(opts, [] {
    Map m;
    model::thread t([&] { CCDS_MODEL_ASSERT(m.put(1, 42)); });
    auto v = m.get(1);
    t.join();
    CCDS_MODEL_ASSERT(!v.has_value() || *v == 42);
    CCDS_MODEL_ASSERT(m.get(1) == 42);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// ---------------------------------------------------------------------------
// Seeded bug: completion before application.
//
// A miniature merged-run combiner in the FlatCombiner mold, with the one
// ordering mistake the real engines' combine() loops are written to avoid:
// it marks every gathered member `done` BEFORE running the merged
// application that writes their results.  A preemption in that window lets
// a submitter wake, observe done == true, and read a result the combiner
// has not produced yet — the "lost result" the batch contract forbids.
// ---------------------------------------------------------------------------

template <bool CompleteBeforeApply>
struct MiniMergedCombiner {
  struct Rec {
    int* out = nullptr;
    Atomic<bool> done{false};
  };

  void submit(std::size_t tid, int* out) {
    Rec rec;
    rec.out = out;
    // release: publish the record to the combiner.
    slots_[tid].store(&rec, std::memory_order_release);
    std::uint32_t spins = 0;
    while (!rec.done.load(std::memory_order_acquire)) {
      if (lock_.try_lock()) {
        combine();
        lock_.unlock();
      } else {
        spin_wait(spins);
      }
    }
  }

  void combine() {
    Rec* group[2];
    int* outs[2];
    std::size_t n = 0;
    for (std::size_t i = 0; i < 2; ++i) {
      Rec* r = slots_[i].load(std::memory_order_acquire);
      if (r == nullptr) continue;
      slots_[i].store(nullptr, std::memory_order_relaxed);  // relaxed: combiner holds the lock
      group[n] = r;
      outs[n] = r->out;
      ++n;
    }
    if constexpr (CompleteBeforeApply) {
      // BUG: the members are released before the merged application writes
      // their results.
      for (std::size_t i = 0; i < n; ++i) {
        group[i]->done.store(true, std::memory_order_release);
      }
      for (std::size_t i = 0; i < n; ++i) *outs[i] = 42;
    } else {
      // The real engines' order: apply, then complete.
      for (std::size_t i = 0; i < n; ++i) *outs[i] = 42;
      for (std::size_t i = 0; i < n; ++i) {
        group[i]->done.store(true, std::memory_order_release);
      }
    }
  }

  TtasLock lock_;
  Atomic<Rec*> slots_[2]{};
};

template <bool CompleteBeforeApply>
void mini_merged_scenario() {
  MiniMergedCombiner<CompleteBeforeApply> cc;
  int a = 0;
  int b = 0;
  model::thread t([&] {
    cc.submit(1, &b);
    CCDS_MODEL_ASSERT(b == 42);
  });
  cc.submit(0, &a);
  CCDS_MODEL_ASSERT(a == 42);
  t.join();
}

TEST(ModelBatched, CompleteBeforeApplyCaughtWithReplayableSchedule) {
  Options opts;
  Result res = model::explore(opts, mini_merged_scenario<true>);
  ASSERT_FALSE(res.ok) << "explorer missed the complete-before-apply window";
  EXPECT_FALSE(res.schedule.empty());
  std::cout << "complete-before-apply caught: " << res.error
            << "\nreplayable schedule: " << res.schedule << "\n";

  Options replay;
  replay.replay = res.schedule;
  Result again = model::explore(replay, mini_merged_scenario<true>);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.executions, 1);
}

TEST(ModelBatched, ApplyThenCompletePassesAllSchedules) {
  Options opts;
  Result res = model::explore(opts, mini_merged_scenario<false>);
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

}  // namespace
}  // namespace ccds

// Bounded model checking of the asymmetric-fence reclamation protocols
// (core/asymmetric_fence.hpp, reclaim/hazard.hpp, reclaim/epoch.hpp).
//
// The heavy barrier is modeled as a seq_cst fence on behalf of ALL threads
// (ExecutionContext::heavy_fence), so the explorer can both (a) verify the
// fence-free read paths against every bounded schedule, including the
// weak-memory stale-read executions that make the naive version unsafe, and
// (b) catch the canonical seeded bug — a reclaimer that uses the LIGHT
// (compiler-only) barrier where it must use the heavy one — with a
// replayable schedule.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/asymmetric_fence.hpp"
#include "core/atomic.hpp"
#include "model/scheduler.hpp"
#include "model/shim.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"

namespace ccds {
namespace {

using model::Options;
using model::Result;

// ---------------------------------------------------------------------------
// Inline protocol skeletons.  These distill the hazard-pointer Dekker to its
// four moves so the whole space is exhaustible and the seeded bug needs only
// a couple of stale-read branches:
//
//   reader:     hp.store(p, release); light; q = src.load(acquire);
//               if (q == p) dereference(p)
//   reclaimer:  src.exchange(null); HEAVY-or-light; h = hp.load(acquire);
//               if (h != p) free(p)
//
// `freed` stands in for the dereference-after-free: the reclaimer publishes
// the free with seq_cst and the reader asserts it has not happened.
// ---------------------------------------------------------------------------

void hazard_dekker(bool reclaimer_uses_heavy) {
  Atomic<int*> src;
  Atomic<int*> hp;
  Atomic<int> freed{0};
  static int node = 42;
  src.store(&node, std::memory_order_relaxed);  // relaxed: pre-spawn init, ordered by the spawn edge
  hp.store(nullptr, std::memory_order_relaxed);  // relaxed: pre-spawn init

  model::thread reclaimer([&] {
    // Unlink, then make the unlink visible / readers' hazards visible.
    src.exchange(nullptr, std::memory_order_acq_rel);
    if (reclaimer_uses_heavy) {
      asymmetric_heavy();
    } else {
      asymmetric_light();  // SEEDED BUG: no store-load ordering either side
    }
    if (hp.load(std::memory_order_acquire) != &node) {
      freed.store(1, std::memory_order_seq_cst);  // seq_cst: UAF witness must be schedule-ordered
    }
  });

  // Reader: publish-and-validate, then "dereference".
  int* p = src.load(std::memory_order_acquire);
  if (p != nullptr) {
    hp.store(p, std::memory_order_release);
    asymmetric_light();
    int* q = src.load(std::memory_order_acquire);
    if (q == p) {
      // Validated: the node must not have been freed in ANY schedule.
      CCDS_MODEL_ASSERT(freed.load(std::memory_order_seq_cst) == 0);
    }
  }
  reclaimer.join();
}

TEST(ModelReclaim, HazardAsymmetricProtocolSafeAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] { hazard_dekker(true); });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 10);
}

TEST(ModelReclaim, HazardReclaimerLightBarrierBugCaught) {
  Options opts;
  Result res = model::explore(opts, [] { hazard_dekker(false); });
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("CCDS_MODEL_ASSERT"), std::string::npos)
      << res.error;
  EXPECT_FALSE(res.schedule.empty());

  // The recorded schedule replays the exact failing interleaving.
  Options replay;
  replay.replay = res.schedule;
  Result again = model::explore(replay, [] { hazard_dekker(false); });
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.executions, 1);
  EXPECT_EQ(again.error, res.error);
}

// ---------------------------------------------------------------------------
// Epoch announcement Dekker.  The invariant the grace-period arithmetic
// rests on: the global epoch never advances more than ONE step past an
// epoch a thread is validly announced at.  The advancer's heavy barrier is
// what makes a pre-barrier announcement visible to its sweep; with the
// seeded light barrier the sweep can stale-read the slot as inactive and
// advance twice past a pinned reader.
// ---------------------------------------------------------------------------

void epoch_dekker(bool advancer_uses_heavy) {
  Atomic<std::uint64_t> global{2};
  constexpr std::uint64_t kInactive = ~0ull;
  Atomic<std::uint64_t> slot{kInactive};
  Atomic<int> done{0};

  model::thread advancer([&] {
    for (int round = 0; round < 2; ++round) {
      const std::uint64_t e = global.load(std::memory_order_acquire);
      if (advancer_uses_heavy) {
        asymmetric_heavy();
      } else {
        asymmetric_light();  // SEEDED BUG: sweep may miss announcements
      }
      const std::uint64_t l = slot.load(std::memory_order_acquire);
      if (l == kInactive || l == e) {
        std::uint64_t expected = e;
        global.compare_exchange_strong(expected, e + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed);  // relaxed: failure = raced, fine
      }
    }
    done.store(1, std::memory_order_release);
  });

  // Pinner: announce + validate (the validating load stays seq_cst — free
  // on the hot path; only the announcement STORE is downgraded).
  std::uint64_t e;
  for (;;) {
    e = global.load(std::memory_order_acquire);
    slot.store(e, std::memory_order_release);
    asymmetric_light();
    if (global.load(std::memory_order_seq_cst) == e) break;
  }
  // While announced at e, the epoch may advance to e+1 but never further.
  const std::uint64_t g1 = global.load(std::memory_order_seq_cst);
  CCDS_MODEL_ASSERT(g1 <= e + 1);
  const std::uint64_t g2 = global.load(std::memory_order_seq_cst);
  CCDS_MODEL_ASSERT(g2 <= e + 1);
  slot.store(kInactive, std::memory_order_release);
  advancer.join();
}

TEST(ModelReclaim, EpochAsymmetricAdvanceInvariantAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] { epoch_dekker(true); });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 10);
}

TEST(ModelReclaim, EpochAdvancerLightBarrierBugCaught) {
  Options opts;
  Result res = model::explore(opts, [] { epoch_dekker(false); });
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("CCDS_MODEL_ASSERT"), std::string::npos)
      << res.error;
  EXPECT_FALSE(res.schedule.empty());

  Options replay;
  replay.replay = res.schedule;
  Result again = model::explore(replay, [] { epoch_dekker(false); });
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.executions, 1);
  EXPECT_EQ(again.error, res.error);
}

// ---------------------------------------------------------------------------
// The REAL domains under the model: the shipped BasicHazardDomain /
// BasicEpochDomain code — including scan()'s / try_advance()'s
// asymmetric_heavy(), the registration-ceiling sweep bound, and the scratch
// buffers — explored end-to-end.  A node's destructor records its address;
// a protected/pinned reader asserts its pointer was never freed.
// ---------------------------------------------------------------------------

struct FreeLog {
  Atomic<void*> last{nullptr};
};

struct TrackedNode {
  FreeLog* log;
  explicit TrackedNode(FreeLog* l) : log(l) {}
  ~TrackedNode() {
    log->last.store(this, std::memory_order_seq_cst);  // seq_cst: free witness must be schedule-ordered
  }
};

TEST(ModelReclaim, RealHazardDomainNoUseAfterFreeAllSchedules) {
  Options opts;
  opts.stale_read_bound = 2;  // domain code has many schedule points
  Result res = model::explore(opts, [] {
    // Log before domain: the domain destructor frees nodes, whose
    // destructors write the log — it must still be alive then.
    FreeLog log;
    // Threshold 1: every retire triggers a real scan (heavy barrier path).
    BasicHazardDomain<1> dom;
    Atomic<TrackedNode*> src{new TrackedNode(&log)};

    model::thread reader([&] {
      auto g = dom.guard();
      TrackedNode* p = g.protect(0, src);
      CCDS_MODEL_ASSERT(p != nullptr);
      CCDS_MODEL_ASSERT(log.last.load(std::memory_order_seq_cst) != p);
    });

    TrackedNode* old =
        src.exchange(new TrackedNode(&log), std::memory_order_acq_rel);
    dom.retire(old);  // triggers scan(): asymmetric_heavy + bounded sweep
    reader.join();
    dom.retire(src.load(std::memory_order_acquire));
    // Domain destructor frees the remainder after the reader is done.
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_GE(res.executions, 20);
}

TEST(ModelReclaim, RealEpochDomainNoUseAfterFreeAllSchedules) {
  Options opts;
  opts.stale_read_bound = 2;
  Result res = model::explore(opts, [] {
    FreeLog log;  // before the domain: freed nodes' destructors write it
    EpochDomain dom;
    Atomic<TrackedNode*> src{new TrackedNode(&log)};

    model::thread reader([&] {
      auto g = dom.guard();  // pin: release announce + light + seq_cst check
      TrackedNode* p = g.protect(0, src);
      CCDS_MODEL_ASSERT(p != nullptr);
      CCDS_MODEL_ASSERT(log.last.load(std::memory_order_seq_cst) != p);
    });

    TrackedNode* old =
        src.exchange(new TrackedNode(&log), std::memory_order_acq_rel);
    dom.retire(old);
    // collect(): try_advance (heavy + bounded sweep) + bag scan.  While the
    // reader stays pinned the stamp can never age out (advance is capped at
    // one step past its announcement), so the node must survive.
    dom.collect();
    dom.collect();
    reader.join();
    dom.retire(src.load(std::memory_order_acquire));
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_GE(res.executions, 20);
}

}  // namespace
}  // namespace ccds

// Bounded model checking of the lock family and the reclamation domains:
// mutual exclusion must hold in every explored schedule, a deliberately
// broken test-then-set lock must be caught with a replayable schedule, and
// the Treiber stack must stay conservative under epoch and hazard-pointer
// reclamation.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <set>
#include <vector>

#include "core/atomic.hpp"
#include "model/scheduler.hpp"
#include "model/shim.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "stack/treiber_stack.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/spinlock.hpp"
#include "sync/ticket_lock.hpp"

namespace ccds {
namespace {

using model::Options;
using model::Result;

// Two threads take the lock and do a deliberately racy read-modify-write of
// `total`; the lock's hb edges are what make it safe.  `in_cs` detects any
// overlap directly, `total == 2` detects lost updates.
template <typename Lock>
Result check_mutual_exclusion() {
  Options opts;
  return model::explore(opts, [] {
    Lock lock;
    Atomic<int> in_cs{0};
    Atomic<int> total{0};
    auto worker = [&] {
      lock.lock();
      CCDS_MODEL_ASSERT(in_cs.fetch_add(1, std::memory_order_relaxed) == 0);
      const int v = total.load(std::memory_order_relaxed);
      total.store(v + 1, std::memory_order_relaxed);
      in_cs.fetch_sub(1, std::memory_order_relaxed);
      lock.unlock();
    };
    model::thread t(worker);
    worker();
    t.join();
    CCDS_MODEL_ASSERT(total.load() == 2);
  });
}

TEST(ModelSync, TasLockMutualExclusionAllSchedules) {
  Result res = check_mutual_exclusion<TasLock>();
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 10);
}

TEST(ModelSync, TtasLockMutualExclusionAllSchedules) {
  Result res = check_mutual_exclusion<TtasLock>();
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

TEST(ModelSync, TicketLockMutualExclusionAllSchedules) {
  Result res = check_mutual_exclusion<TicketLock>();
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

TEST(ModelSync, McsLockMutualExclusionAllSchedules) {
  Result res = check_mutual_exclusion<McsLock>();
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Textbook TOCTOU lock: tests the flag, then sets it non-atomically.  One
// preemption between the load and the store lets both threads in; the
// explorer must find that window and hand back a replayable schedule.
struct BrokenTestThenSetLock {
  Atomic<bool> flag{false};
  void lock() {
    for (;;) {
      if (!flag.load(std::memory_order_acquire)) {
        flag.store(true, std::memory_order_relaxed);  // BUG: lost the RMW
        return;
      }
      model::yield_hint();
    }
  }
  void unlock() { flag.store(false, std::memory_order_release); }
};

void broken_lock_scenario() {
  BrokenTestThenSetLock lock;
  Atomic<int> in_cs{0};
  auto worker = [&] {
    lock.lock();
    CCDS_MODEL_ASSERT(in_cs.fetch_add(1, std::memory_order_relaxed) == 0);
    in_cs.fetch_sub(1, std::memory_order_relaxed);
    lock.unlock();
  };
  model::thread t(worker);
  worker();
  t.join();
}

TEST(ModelSync, BrokenTestThenSetLockCaughtWithReplayableSchedule) {
  Options opts;
  Result res = model::explore(opts, broken_lock_scenario);
  ASSERT_FALSE(res.ok) << "explorer missed the TOCTOU window";
  EXPECT_FALSE(res.schedule.empty());
  std::cout << "broken lock caught: " << res.error
            << "\nreplayable schedule: " << res.schedule << "\n";

  Options replay;
  replay.replay = res.schedule;
  Result again = model::explore(replay, broken_lock_scenario);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.executions, 1);
}

// Epoch-based reclamation under the model: pin/unpin publication, the
// seq_cst announce/validate dance, retire stamping, and a post-quiescence
// collect_all() all run instrumented.
TEST(ModelSync, EpochReclaimedTreiberConservationAllSchedules) {
  Options opts;
  opts.stale_read_bound = 2;  // epoch ops add many schedule points
  Result res = model::explore(opts, [] {
    TreiberStack<std::uint64_t, EpochDomain> st;
    std::vector<std::uint64_t> popped;
    model::thread popper([&] {
      for (int i = 0; i < 2; ++i) {
        if (auto v = st.try_pop()) popped.push_back(*v);
      }
    });
    st.push(1);
    st.push(2);
    popper.join();
    std::multiset<std::uint64_t> seen(popped.begin(), popped.end());
    while (auto v = st.try_pop()) seen.insert(*v);
    CCDS_MODEL_ASSERT((seen == std::multiset<std::uint64_t>{1, 2}));
    st.domain().collect_all();  // exercise try_advance at quiescence
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Hazard pointers under the model: the protect() publish/validate loop and
// the guard's slot clears are all schedule points, so this covers the
// store-load ordering HP correctness hinges on.  Kept to one element per
// side: the guard destructor alone is kSlots stores per operation.
TEST(ModelSync, HazardReclaimedTreiberConservationAllSchedules) {
  Options opts;
  opts.stale_read_bound = 2;
  Result res = model::explore(opts, [] {
    TreiberStack<std::uint64_t, HazardDomain> st;
    std::vector<std::uint64_t> popped;
    model::thread popper([&] {
      if (auto v = st.try_pop()) popped.push_back(*v);
    });
    st.push(1);
    popper.join();
    std::multiset<std::uint64_t> seen(popped.begin(), popped.end());
    while (auto v = st.try_pop()) seen.insert(*v);
    CCDS_MODEL_ASSERT((seen == std::multiset<std::uint64_t>{1}));
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

}  // namespace
}  // namespace ccds

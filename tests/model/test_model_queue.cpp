// Bounded model checking of the M&S queue and the SPSC ring: conservation,
// FIFO order, and Wing–Gong linearizability over every explored schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "core/atomic.hpp"
#include "linearizability.hpp"
#include "model/scheduler.hpp"
#include "model/shim.hpp"
#include "queue/ms_queue.hpp"
#include "queue/spsc_ring.hpp"
#include "reclaim/leaky.hpp"

namespace ccds {
namespace {

using model::Options;
using model::Result;

// Conservation + FIFO: with one enqueuer and one dequeuer, the dequeuer's
// observed sequence must be exactly a prefix of the enqueue order, and every
// value must come out exactly once across dequeues + final drain.
TEST(ModelQueue, MsQueueConservationAndFifoAllSchedules) {
  Options opts;
  opts.stale_read_bound = 2;  // M&S ops have many schedule points
  Result res = model::explore(opts, [] {
    MSQueue<std::uint64_t, LeakyDomain> q;
    std::vector<std::uint64_t> got;
    model::thread consumer([&] {
      for (int i = 0; i < 2; ++i) {
        if (auto v = q.try_dequeue()) got.push_back(*v);
      }
    });
    q.enqueue(1);
    q.enqueue(2);
    consumer.join();
    for (std::size_t i = 0; i < got.size(); ++i) {
      CCDS_MODEL_ASSERT(got[i] == i + 1);  // FIFO: prefix of 1,2
    }
    std::multiset<std::uint64_t> seen(got.begin(), got.end());
    while (auto v = q.try_dequeue()) seen.insert(*v);
    CCDS_MODEL_ASSERT((seen == std::multiset<std::uint64_t>{1, 2}));
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 50);
}

// Satellite: Wing–Gong accepts the recorded 2-thread ms_queue history of
// every explored schedule.
TEST(ModelQueue, WingGongAcceptsAllExploredMsQueueSchedules) {
  Options opts;
  opts.stale_read_bound = 2;
  Result res = model::explore(opts, [] {
    MSQueue<std::uint64_t, LeakyDomain> q;
    lin::HistoryRecorder rec;
    lin::HistoryRecorder::Log la, lb;
    model::thread producer([&] {
      for (std::uint64_t i = 1; i <= 2; ++i) {
        rec.record_void(la, lin::QueueSpec::kEnq, i, [&] { q.enqueue(i); });
      }
    });
    for (int i = 0; i < 2; ++i) {
      rec.record(
          lb, lin::QueueSpec::kDeq, 0, [&] { return q.try_dequeue(); },
          [](const std::optional<std::uint64_t>& r) {
            return r ? std::optional<std::uint64_t>(*r) : std::nullopt;
          });
    }
    producer.join();
    std::vector<lin::Op> h(la);
    h.insert(h.end(), lb.begin(), lb.end());
    CCDS_MODEL_ASSERT(lin::Checker<lin::QueueSpec>::linearizable(h));
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Satellite: hand-built illegal queue histories stay rejected under the
// model scheduler (checker behavior is not perturbed by instrumentation).
TEST(ModelQueue, WingGongStillRejectsBadHistoriesUnderModel) {
  Options opts;
  Result res = model::explore(opts, [] {
    auto op = [](int kind, std::uint64_t arg, std::optional<std::uint64_t> r,
                 std::uint64_t inv, std::uint64_t rsp) {
      lin::Op o;
      o.kind = kind;
      o.arg = arg;
      o.result = r;
      o.invoke = inv;
      o.response = rsp;
      return o;
    };
    // FIFO violation: Enq(1);Enq(2) strictly ordered, but Deq()=2 first.
    std::vector<lin::Op> fifo = {
        op(lin::QueueSpec::kEnq, 1, std::nullopt, 0, 1),
        op(lin::QueueSpec::kEnq, 2, std::nullopt, 2, 3),
        op(lin::QueueSpec::kDeq, 0, 2, 4, 5),
        op(lin::QueueSpec::kDeq, 0, 1, 6, 7),
    };
    CCDS_MODEL_ASSERT(!lin::Checker<lin::QueueSpec>::linearizable(fifo));
    // Lost value: Deq() reports empty strictly after Enq(1) completed.
    std::vector<lin::Op> lost = {
        op(lin::QueueSpec::kEnq, 1, std::nullopt, 0, 1),
        op(lin::QueueSpec::kDeq, 0, std::nullopt, 2, 3),
    };
    CCDS_MODEL_ASSERT(!lin::Checker<lin::QueueSpec>::linearizable(lost));
  });
  EXPECT_TRUE(res.ok) << res.error;
}

// SPSC ring with capacity 1: forces the full-ring path (producer must
// observe the consumer's head advance before the second push can land).
// Conservation + order over every explored schedule.
TEST(ModelQueue, SpscRingConservationAllSchedules) {
  Options opts;
  opts.stale_read_bound = 2;
  Result res = model::explore(opts, [] {
    SpscRing<std::uint64_t> ring(1);
    std::vector<std::uint64_t> got;
    model::thread consumer([&] {
      while (got.size() < 2) {
        if (auto v = ring.try_pop()) {
          got.push_back(*v);
        } else {
          model::yield_hint();
        }
      }
    });
    for (std::uint64_t i = 1; i <= 2; ++i) {
      while (!ring.try_push(i)) {
        model::yield_hint();
      }
    }
    consumer.join();
    CCDS_MODEL_ASSERT((got == std::vector<std::uint64_t>{1, 2}));
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 20);
}

}  // namespace
}  // namespace ccds

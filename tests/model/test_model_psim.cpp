// Bounded model checking of the P-Sim wait-free engine: on every explored
// interleaving every announced operation must be applied exactly once in
// the installed cell lineage (helpers may execute it many times against
// DISCARDED candidates — only the CAS-installed copies count), results
// must route back through the cells, and batches must stay atomic.  A
// miniature Sim whose combiner ignores the per-thread applied-sequence
// guard — so a still-announced request gets re-applied by a later episode
// ("lost announce" bookkeeping) — must be caught with a replayable
// schedule, while the guarded twin passes all schedules.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <span>

#include "core/arch.hpp"
#include "core/atomic.hpp"
#include "model/scheduler.hpp"
#include "model/shim.hpp"
#include "sync/psim.hpp"

namespace ccds {
namespace {

using model::Options;
using model::Result;

// Two threads through the real engine (announce array, epoch-guarded cell
// CAS, helping): distinct deltas make any lost or duplicated application
// visible in the sum on every schedule.
TEST(ModelPSim, ConcurrentIncrementsExactAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    PSim<int> e;
    model::thread t([&] { e.apply([](int& v) { v += 1; }); });
    e.apply([](int& v) { v += 10; });
    t.join();
    CCDS_MODEL_ASSERT(e.apply([](int& v) { return v; }) == 11);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 10);
}

// Result routing through the cells' per-thread result buffers: concurrent
// fetch_adds must observe distinct priors on every schedule — even when a
// helper computed one thread's result inside the OTHER thread's cell.
TEST(ModelPSim, FetchAddPriorsUniqueAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    PSim<int> e;
    int p0 = -1;
    int p1 = -1;
    model::thread t([&] { p1 = e.apply([](int& v) { return v++; }); });
    p0 = e.apply([](int& v) { return v++; });
    t.join();
    CCDS_MODEL_ASSERT(p0 != p1);
    CCDS_MODEL_ASSERT((p0 == 0 || p0 == 1) && (p1 == 0 || p1 == 1));
    CCDS_MODEL_ASSERT(e.apply([](int& v) { return v; }) == 2);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// A batch is one announce record applied in one episode: the probe must see
// none or all of the batch's deltas, never a half-batch, and the mutated
// ops must come back to the submitter from the installed cell.
TEST(ModelPSim, BatchAppliesAtomicallyAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] {
    PSim<int> e;
    struct AddOp {
      int delta;
      int seen;
      void operator()(int& v) {
        seen = v;
        v += delta;
      }
    };
    AddOp ops[2] = {{1, -1}, {10, -1}};
    model::thread t([&] { e.apply_batch(std::span<AddOp>(ops)); });
    const int seen = e.apply([](int& v) {
      const int s = v;
      v += 100;
      return s;
    });
    t.join();
    CCDS_MODEL_ASSERT(seen == 0 || seen == 11);  // never a half-batch
    CCDS_MODEL_ASSERT(ops[1].seen == ops[0].seen + 1);  // back-to-back
    CCDS_MODEL_ASSERT(e.apply([](int& v) { return v; }) == 111);
  });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Miniature Sim: announce slots + copy-apply-CAS over arena-allocated
// cells, with plain (model-invisible) cell payloads exactly like the real
// engine — the protocol's atomics are the announce slots, the cell pointer,
// and the arena bump counter.  Template knob: honor the per-thread
// applied-sequence guard (the real engine's check) or ignore it (the seeded
// bug: the combiner "loses" the announce bookkeeping, so a request whose
// owner has not yet cleared its slot is re-applied by a later episode).
template <bool GuardApplied>
struct MiniPSim {
  struct Cell {
    int value = 0;
    std::uint64_t applied[2] = {0, 0};
  };
  struct Req {
    std::uint64_t seq = 0;
    int delta = 0;
  };

  MiniPSim() {
    // relaxed: constructor, pre-publication.
    cur_.store(&arena_[0], std::memory_order_relaxed);
    arena_next_.store(1, std::memory_order_relaxed);
  }

  Cell* alloc() {
    // relaxed: the slot index is claimed by the fetch_add itself; the cell
    // is published (if ever) by the installing CAS's release.
    const int i = arena_next_.fetch_add(1, std::memory_order_relaxed);
    CCDS_MODEL_ASSERT(i < kArenaCells);
    return &arena_[i];
  }

  void add(std::size_t tid, int d) {
    Req* r = &rpool_[tid][nops_[tid]++];
    r->seq = ++next_seq_[tid];
    r->delta = d;
    // release: publish the request fields to helpers.
    slot_[tid].store(r, std::memory_order_release);
    for (;;) {
      // acquire: pairs with the installing CAS's release.
      Cell* c = cur_.load(std::memory_order_acquire);
      if (c->applied[tid] >= r->seq) break;
      Cell* cand = alloc();
      *cand = *c;  // plain copy: cells are immutable once installed
      for (std::size_t t = 0; t < 2; ++t) {
        // acquire: pairs with the announcing release store.
        Req* pending = slot_[t].load(std::memory_order_acquire);
        if (pending == nullptr) continue;
        if (GuardApplied && cand->applied[t] >= pending->seq) continue;
        cand->value += pending->delta;
        cand->applied[t] = pending->seq;
      }
      // acq_rel on success: release publishes the candidate; acquire orders
      // the loser's reload.  Failed candidates are simply abandoned to the
      // arena (per-execution storage, reclaimed wholesale).
      if (cur_.compare_exchange_strong(c, cand, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        break;
      }
      Cell* now = cur_.load(std::memory_order_acquire);
      if (now->applied[tid] >= r->seq) break;
    }
    // Completion: clear the announce slot (the real engine does this before
    // retiring the record).  The double-apply window of the bug variant is
    // exactly a helper episode running between our completion and this
    // clear — or before it.
    slot_[tid].store(nullptr, std::memory_order_release);
  }

  int total() {
    return cur_.load(std::memory_order_acquire)->value;
  }

  static constexpr int kArenaCells = 16;
  Atomic<Cell*> cur_{nullptr};
  Atomic<Req*> slot_[2]{};
  Atomic<int> arena_next_{0};
  Cell arena_[kArenaCells];
  Req rpool_[2][2];
  std::uint64_t next_seq_[2] = {0, 0};
  int nops_[2] = {0, 0};
};

// Main performs TWO ops so its second episode can observe the other
// thread's still-announced (already applied, not yet cleared) request and
// — without the guard — apply it again.
template <bool GuardApplied>
void helping_scenario() {
  MiniPSim<GuardApplied> e;
  model::thread t([&] { e.add(1, 100); });
  e.add(0, 1);
  e.add(0, 10);
  t.join();
  CCDS_MODEL_ASSERT(e.total() == 111);
}

TEST(ModelPSim, LostAnnounceGuardCaughtWithReplayableSchedule) {
  Options opts;
  Result res = model::explore(opts, helping_scenario<false>);
  ASSERT_FALSE(res.ok) << "explorer missed the unguarded re-apply window";
  EXPECT_FALSE(res.schedule.empty());
  std::cout << "unguarded announce re-apply caught: " << res.error
            << "\nreplayable schedule: " << res.schedule << "\n";

  Options replay;
  replay.replay = res.schedule;
  Result again = model::explore(replay, helping_scenario<false>);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.executions, 1);
}

TEST(ModelPSim, GuardedHelpingPassesAllSchedules) {
  Options opts;
  Result res = model::explore(opts, helping_scenario<true>);
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
}

}  // namespace
}  // namespace ccds

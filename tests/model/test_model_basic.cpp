// Self-tests for the deterministic interleaving explorer: exhaustiveness,
// weak-memory staleness, deadlock detection, and schedule replay.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/atomic.hpp"
#include "model/scheduler.hpp"
#include "model/shim.hpp"

namespace ccds {
namespace {

using model::Options;
using model::Result;

// Correct message passing: release store / acquire load.  Every explored
// schedule must satisfy the publication invariant.
TEST(ModelBasic, ReleaseAcquireMessagePassingPasses) {
  Options opts;
  Result res = model::explore(opts, [] {
    Atomic<int> data{0};
    Atomic<int> flag{0};
    model::thread producer([&] {
      data.store(42, std::memory_order_relaxed);
      flag.store(1, std::memory_order_release);
    });
    if (flag.load(std::memory_order_acquire) == 1) {
      CCDS_MODEL_ASSERT(data.load(std::memory_order_relaxed) == 42);
    }
    producer.join();
  });
  EXPECT_TRUE(res.ok) << res.error << "\n" << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 4);
}

// The classic memory-order bug: the flag store is weakened to relaxed, so
// nothing orders the data store before it.  The explorer must find a
// schedule + staleness choice where the consumer sees flag==1 but stale
// data==0 — precisely what random stress tests essentially never hit.
TEST(ModelBasic, RelaxedPublicationBugCaught) {
  Options opts;
  Result res = model::explore(opts, [] {
    Atomic<int> data{0};
    Atomic<int> flag{0};
    model::thread producer([&] {
      data.store(42, std::memory_order_relaxed);
      flag.store(1, std::memory_order_relaxed);  // BUG: needs release
    });
    if (flag.load(std::memory_order_acquire) == 1) {
      CCDS_MODEL_ASSERT(data.load(std::memory_order_relaxed) == 42);
    }
    producer.join();
  });
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("CCDS_MODEL_ASSERT"), std::string::npos);
  EXPECT_FALSE(res.schedule.empty());
  EXPECT_FALSE(res.trace.empty());
}

// A release *fence* before a relaxed store re-establishes the edge: the
// fence modeling must keep this correct variant green.
TEST(ModelBasic, ReleaseFencePublicationPasses) {
  Options opts;
  Result res = model::explore(opts, [] {
    Atomic<int> data{0};
    Atomic<int> flag{0};
    model::thread producer([&] {
      data.store(42, std::memory_order_relaxed);
      model::fence(std::memory_order_release);
      flag.store(1, std::memory_order_relaxed);
    });
    if (flag.load(std::memory_order_acquire) == 1) {
      CCDS_MODEL_ASSERT(data.load(std::memory_order_relaxed) == 42);
    }
    producer.join();
  });
  EXPECT_TRUE(res.ok) << res.error << "\n" << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// Unsynchronized read-modify-write sequence: some interleaving loses an
// update, and the explorer must find it (needs exactly one preemption).
TEST(ModelBasic, LostUpdateCaught) {
  Options opts;
  Result res = model::explore(opts, [] {
    Atomic<int> c{0};
    auto bump = [&] {
      const int v = c.load(std::memory_order_relaxed);
      c.store(v + 1, std::memory_order_relaxed);
    };
    model::thread t(bump);
    bump();
    t.join();
    CCDS_MODEL_ASSERT(c.load() == 2);
  });
  ASSERT_FALSE(res.ok);
  EXPECT_FALSE(res.schedule.empty());
}

// The same counter guarded by a model::mutex is correct in every schedule.
TEST(ModelBasic, MutexCounterPasses) {
  Options opts;
  Result res = model::explore(opts, [] {
    Atomic<int> c{0};
    model::mutex mu;
    auto bump = [&] {
      mu.lock();
      const int v = c.load(std::memory_order_relaxed);
      c.store(v + 1, std::memory_order_relaxed);
      mu.unlock();
    };
    model::thread t(bump);
    bump();
    t.join();
    CCDS_MODEL_ASSERT(c.load() == 2);
  });
  EXPECT_TRUE(res.ok) << res.error << "\n" << res.trace;
  EXPECT_TRUE(res.exhausted);
}

// ABBA lock ordering: the explorer must reach the interleaving where both
// threads hold one lock and block on the other.
TEST(ModelBasic, AbbaDeadlockCaught) {
  Options opts;
  Result res = model::explore(opts, [] {
    model::mutex a, b;
    model::thread t([&] {
      a.lock();
      b.lock();
      b.unlock();
      a.unlock();
    });
    b.lock();
    a.lock();
    a.unlock();
    b.unlock();
    t.join();
  });
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("deadlock"), std::string::npos) << res.error;
}

// Two threads, two stores each to one atomic: with an unbounded switch
// budget this is the full interleaving lattice C(4,2) = 6; preemption
// bound 2 covers all of it here, and the DFS must terminate exhausted.
TEST(ModelBasic, ExhaustivelyEnumeratesInterleavings) {
  Options opts;
  opts.stale_read_bound = 0;  // pure CHESS for a countable space
  Result res = model::explore(opts, [] {
    Atomic<int> x{0};
    model::thread t([&] {
      x.store(1, std::memory_order_relaxed);
      x.store(2, std::memory_order_relaxed);
    });
    x.store(3, std::memory_order_relaxed);
    x.store(4, std::memory_order_relaxed);
    t.join();
  });
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.exhausted);
  // At least the 6 maximal store interleavings (schedule points at spawn
  // and join add a few more).
  EXPECT_GE(res.executions, 6);
}

// A failing schedule must replay deterministically: running the recorded
// choice list reproduces the same assertion on the first (only) execution.
TEST(ModelBasic, FailingScheduleReplays) {
  auto buggy = [] {
    Atomic<int> data{0};
    Atomic<int> flag{0};
    model::thread producer([&] {
      data.store(42, std::memory_order_relaxed);
      flag.store(1, std::memory_order_relaxed);  // BUG
    });
    if (flag.load(std::memory_order_acquire) == 1) {
      CCDS_MODEL_ASSERT(data.load(std::memory_order_relaxed) == 42);
    }
    producer.join();
  };
  Options opts;
  Result res = model::explore(opts, buggy);
  ASSERT_FALSE(res.ok);

  Options replay;
  replay.replay = res.schedule;
  Result again = model::explore(replay, buggy);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.executions, 1);
  EXPECT_EQ(again.error, res.error);
}

// Spin loops must cooperate with the scheduler: a thread spinning on a flag
// another thread will set must terminate in every explored schedule.
TEST(ModelBasic, SpinWaitLoopTerminates) {
  Options opts;
  Result res = model::explore(opts, [] {
    Atomic<bool> go{false};
    model::thread t([&] { go.store(true, std::memory_order_release); });
    while (!go.load(std::memory_order_acquire)) {
      model::yield_hint();
    }
    t.join();
  });
  EXPECT_TRUE(res.ok) << res.error << "\n" << res.trace;
  EXPECT_TRUE(res.exhausted);
}

}  // namespace
}  // namespace ccds

// Bounded model checking of the Fomitchev–Ruppert deletion protocol that
// skiplist/lockfree_skiplist.hpp runs at every level: flag the predecessor's
// link, set the victim's backlink and mark its link, then help-unlink — with
// failed operations recovering through the backlink chain instead of
// restarting from the head.
//
// The full skiplist has too many schedule points to exhaust, so this suite
// distills ONE level of the protocol to its moves, exactly as
// test_model_reclaim.cpp distills the hazard-pointer Dekker: nodes are small
// integer ids, each node's link is a single Atomic word packing
// (successor << 2) | bits with bit0 = mark and bit1 = flag, and backlinks
// are plain Atomic ids.  The move sequence per operation is the same as the
// header's (try_flag / mark-with-backlink / help_unlink; insert splices only
// through a clean link and escapes marked predecessors via the backlink), so
// every interleaving the explorer enumerates is an interleaving the real
// per-level protocol admits.
//
// The seeded bug is the classic ordering mistake the protocol exists to
// rule out: unlinking the victim BEFORE marking its link.  In the window
// between those two steps the victim's link is clean, so a concurrent
// insert can splice behind an already-unlinked node and the key vanishes.
// The explorer finds that schedule and replays it.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/atomic.hpp"
#include "model/scheduler.hpp"
#include "model/shim.hpp"

namespace ccds {
namespace {

using model::Options;
using model::Result;

// ---------------------------------------------------------------------------
// Distilled single-level protocol state.
//
//   id:   0 = head (key min), 1..5 = real nodes, 7 = null sentinel
//   link: (succ << 2) | bits,  bit0 = kMark, bit1 = kFlag (never both)
// ---------------------------------------------------------------------------

constexpr int kNull = 7;
constexpr std::uint64_t kMark = 1;
constexpr std::uint64_t kFlag = 2;
constexpr int kHead = 0;

constexpr std::uint64_t pack(int succ, std::uint64_t bits) {
  return (static_cast<std::uint64_t>(succ) << 2) | bits;
}
constexpr int succ_of(std::uint64_t link) { return static_cast<int>(link >> 2); }
constexpr std::uint64_t bits_of(std::uint64_t link) { return link & 3; }

struct Level {
  Atomic<std::uint64_t> link[8];
  Atomic<int> backlink[8];
  int key[8] = {};

  // Build head -> chain[0] -> chain[1] -> ... -> null.
  void init(std::initializer_list<int> ids, std::initializer_list<int> keys) {
    key[kHead] = -1;
    key[kNull] = 1 << 20;
    auto k = keys.begin();
    for (int id : ids) key[id] = *k++;
    int prev = kHead;
    for (int id : ids) {
      if (key[id] >= (1 << 10)) continue;  // staged node, not yet linked
      link[prev].store(pack(id, 0), std::memory_order_relaxed);  // relaxed: pre-spawn init, ordered by the spawn edge
      prev = id;
    }
    link[prev].store(pack(kNull, 0), std::memory_order_relaxed);  // relaxed: pre-spawn init
  }

  // Finish a flagged predecessor: mark the flagged successor (setting its
  // backlink first) and swing pred's link past it.  Mirrors
  // help_flagged()/help_marked() in the header.
  void help_flagged(int pred, int victim) {
    backlink[victim].store(pred, std::memory_order_release);
    for (;;) {
      std::uint64_t vs = link[victim].load(std::memory_order_acquire);
      if (bits_of(vs) & kMark) break;
      if (bits_of(vs) & kFlag) {  // victim is itself deleting its successor
        help_flagged(victim, succ_of(vs));
        continue;
      }
      std::uint64_t expected = vs;
      if (link[victim].compare_exchange_strong(
              expected, vs | kMark, std::memory_order_acq_rel,
              std::memory_order_relaxed)) {  // relaxed: failure value unused, loop re-reads
        break;
      }
    }
    std::uint64_t vs = link[victim].load(std::memory_order_acquire);
    std::uint64_t expected = pack(victim, kFlag);
    link[pred].compare_exchange_strong(
        expected, pack(succ_of(vs), 0), std::memory_order_acq_rel,
        std::memory_order_relaxed);  // relaxed: failure value unused, someone else unlinked
  }

  // Insert key[node] starting the window search at `pred` (the head in
  // these tests).  Returns once spliced.  Marked predecessors are escaped
  // through the backlink chain — the local-recovery move under test.
  void insert(int node, int pred) {
    for (;;) {
      std::uint64_t ps = link[pred].load(std::memory_order_acquire);
      if (bits_of(ps) & kMark) {
        pred = backlink[pred].load(std::memory_order_acquire);
        continue;
      }
      const int next = succ_of(ps);
      if (bits_of(ps) & kFlag) {
        // Help BEFORE the key comparison: walking right through a flagged
        // link can land on a marked node whose backlink points straight
        // back here — an escape cycle that never terminates if the deleter
        // is starved.  Helping first makes the searcher itself guarantee
        // progress, which is what makes the protocol lock-free.
        help_flagged(pred, next);
        continue;
      }
      if (key[next] < key[node]) {
        pred = next;
        continue;
      }
      link[node].store(pack(next, 0), std::memory_order_release);
      std::uint64_t expected = ps;  // bits are 0 here
      if (link[pred].compare_exchange_strong(
              expected, pack(node, 0), std::memory_order_acq_rel,
              std::memory_order_relaxed)) {  // relaxed: failure value unused, loop re-reads
        return;
      }
    }
  }

  // Remove the node with key `k`, searching from `pred`.  Returns true iff
  // THIS call won the flag CAS — flagging is exclusive and confers
  // ownership of the deletion (a helper may legitimately perform the mark
  // on the owner's behalf), so two concurrent removers of the same key see
  // exactly one success.  `unlink_before_mark` seeds the ordering bug.
  bool remove(int k, int pred, bool unlink_before_mark = false) {
    int victim;
    for (;;) {  // try_flag
      std::uint64_t ps = link[pred].load(std::memory_order_acquire);
      if (bits_of(ps) & kMark) {
        pred = backlink[pred].load(std::memory_order_acquire);
        continue;
      }
      victim = succ_of(ps);
      if (bits_of(ps) & kFlag) {
        // Help before walking right (same escape-cycle hazard as in
        // insert()).  If the flagged node carried our key, the competitor
        // owns its deletion and we lost the race.
        help_flagged(pred, victim);
        if (key[victim] == k) return false;
        continue;
      }
      if (key[victim] > k) return false;  // already gone
      if (key[victim] < k) {
        pred = victim;
        continue;
      }
      std::uint64_t expected = ps;
      if (link[pred].compare_exchange_strong(
              expected, pack(victim, kFlag), std::memory_order_acq_rel,
              std::memory_order_relaxed)) {  // relaxed: failure value unused, loop re-reads
        break;
      }
    }

    if (unlink_before_mark) {
      // SEEDED BUG: swing pred past the victim while the victim's own link
      // is still clean, then mark.  A concurrent insert that chose the
      // victim as its predecessor sees no mark, splices behind an unlinked
      // node, and loses its key.
      std::uint64_t vs = link[victim].load(std::memory_order_acquire);
      std::uint64_t expected = pack(victim, kFlag);
      link[pred].compare_exchange_strong(
          expected, pack(succ_of(vs), 0), std::memory_order_acq_rel,
          std::memory_order_relaxed);  // relaxed: failure value unused
      backlink[victim].store(pred, std::memory_order_release);
      expected = vs;
      link[victim].compare_exchange_strong(
          expected, vs | kMark, std::memory_order_acq_rel,
          std::memory_order_relaxed);  // relaxed: failure value unused
      return true;
    }

    // Correct order: backlink, mark, THEN unlink.  A helper may beat us to
    // the mark (it is helping OUR flagged deletion), so the mark loop just
    // ensures completion; ownership was decided by the flag CAS above.
    backlink[victim].store(pred, std::memory_order_release);
    for (;;) {
      std::uint64_t vs = link[victim].load(std::memory_order_acquire);
      if (bits_of(vs) & kMark) break;
      if (bits_of(vs) & kFlag) {
        help_flagged(victim, succ_of(vs));
        continue;
      }
      std::uint64_t expected = vs;
      if (link[victim].compare_exchange_strong(
              expected, vs | kMark, std::memory_order_acq_rel,
              std::memory_order_relaxed)) {  // relaxed: failure value unused, loop re-reads
        break;
      }
    }
    const std::uint64_t vs = link[victim].load(std::memory_order_acquire);
    std::uint64_t expected = pack(victim, kFlag);
    link[pred].compare_exchange_strong(
        expected, pack(succ_of(vs), 0), std::memory_order_acq_rel,
        std::memory_order_relaxed);  // relaxed: failure value unused, someone else unlinked
    return true;
  }

  // Post-join structural check: walk the list and assert every link is
  // clean (all flags resolved, all marked nodes physically unlinked) and
  // the surviving keys are exactly `expect`.
  void check_final(std::initializer_list<int> expect) {
    auto it = expect.begin();
    int cur = kHead;
    for (;;) {
      const std::uint64_t l = link[cur].load(std::memory_order_acquire);
      CCDS_MODEL_ASSERT(bits_of(l) == 0);
      cur = succ_of(l);
      if (cur == kNull) break;
      CCDS_MODEL_ASSERT(it != expect.end());
      CCDS_MODEL_ASSERT(key[cur] == *it);
      ++it;
    }
    CCDS_MODEL_ASSERT(it == expect.end());
  }
};

// ---------------------------------------------------------------------------
// 1. Two concurrent removers of the same key: the flag CAS arbitrates, the
// loser helps, exactly one mark wins, and helping leaves the list clean on
// every schedule.
// ---------------------------------------------------------------------------

void duel_remove() {
  Level lv;
  // head -> A(10) -> B(20) -> C(30)
  lv.init({1, 2, 3}, {10, 20, 30});
  Atomic<int> wins{0};

  model::thread other([&] {
    if (lv.remove(20, kHead)) {
      wins.fetch_add(1, std::memory_order_acq_rel);
    }
  });

  if (lv.remove(20, kHead)) {
    wins.fetch_add(1, std::memory_order_acq_rel);
  }
  other.join();

  CCDS_MODEL_ASSERT(wins.load(std::memory_order_acquire) == 1);
  lv.check_final({10, 30});
}

TEST(ModelSkiplist, ConcurrentRemoveOneWinnerAllSchedules) {
  Options opts;
  Result res = model::explore(opts, duel_remove);
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 10);
}

// ---------------------------------------------------------------------------
// 2. Insert racing a remove of its predecessor: the inserter's splice CAS
// fails on the marked link, escapes through the backlink, and re-splices
// after the survivor — the key must never be lost, on any schedule.
// ---------------------------------------------------------------------------

void insert_vs_remove(bool unlink_before_mark) {
  Level lv;
  // head -> A(10) -> B(20) -> C(30); D(25) staged (key >= 2^10 marks a
  // node as unlinked in init, so stage D with its real key set after).
  lv.init({1, 2, 3, 4}, {10, 20, 30, 1 << 10});
  lv.key[4] = 25;

  model::thread remover([&] { lv.remove(20, kHead, unlink_before_mark); });

  lv.insert(4, kHead);  // D's window is (B, C) unless B's deletion intervenes
  remover.join();

  lv.check_final({10, 25, 30});
}

TEST(ModelSkiplist, InsertSurvivesPredecessorRemovalAllSchedules) {
  Options opts;
  Result res = model::explore(opts, [] { insert_vs_remove(false); });
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 10);
}

TEST(ModelSkiplist, UnlinkBeforeMarkBugCaught) {
  Options opts;
  Result res = model::explore(opts, [] { insert_vs_remove(true); });
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("CCDS_MODEL_ASSERT"), std::string::npos)
      << res.error;
  EXPECT_FALSE(res.schedule.empty());

  // The recorded schedule replays the exact lost-insert interleaving.
  Options replay;
  replay.replay = res.schedule;
  Result again = model::explore(replay, [] { insert_vs_remove(true); });
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.executions, 1);
  EXPECT_EQ(again.error, res.error);
}

// ---------------------------------------------------------------------------
// 3. Backlink chain escape: both of the inserter's candidate predecessors
// are deleted out from under it (B then A), so recovery may have to take
// TWO backlink hops (B -> A -> head) before the splice lands.
// ---------------------------------------------------------------------------

void chain_escape() {
  Level lv;
  // head -> A(10) -> B(20) -> C(30); D(25) staged.
  lv.init({1, 2, 3, 4}, {10, 20, 30, 1 << 10});
  lv.key[4] = 25;

  model::thread remover([&] {
    lv.remove(20, kHead);  // unlink B first so A's backlink matters next
    lv.remove(10, kHead);
  });

  lv.insert(4, kHead);
  remover.join();

  lv.check_final({25, 30});
}

TEST(ModelSkiplist, BacklinkChainEscapeAllSchedules) {
  Options opts;
  Result res = model::explore(opts, chain_escape);
  EXPECT_TRUE(res.ok) << res.error << "\nschedule: " << res.schedule << "\n"
                      << res.trace;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GE(res.executions, 10);
}

}  // namespace
}  // namespace ccds

// Parameterized property sweeps: the same conservation/agreement properties
// checked across the cross product of (implementation x thread count x key
// range x workload mix) for sets, and (implementation x thread count) for
// queues.  This is where "every structure satisfies its abstract spec under
// every shape of load" gets enforced mechanically.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/rng.hpp"
#include "hash/split_ordered_set.hpp"
#include "list/coarse_list.hpp"
#include "list/harris_list.hpp"
#include "list/hoh_list.hpp"
#include "list/lazy_list.hpp"
#include "list/optimistic_list.hpp"
#include "queue/coarse_queue.hpp"
#include "queue/ms_queue.hpp"
#include "queue/two_lock_queue.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "skiplist/lazy_skiplist.hpp"
#include "skiplist/lockfree_skiplist.hpp"
#include "skiplist/seq_skiplist.hpp"
#include "test_util.hpp"
#include "tree/fine_bst.hpp"
#include "tree/seq_avl.hpp"
#include "tree/tombstone_bst.hpp"

namespace ccds {
namespace {

// ---------- type-erased adapters ----------

class AbstractSet {
 public:
  virtual ~AbstractSet() = default;
  virtual bool insert(std::uint64_t k) = 0;
  virtual bool remove(std::uint64_t k) = 0;
  virtual bool contains(std::uint64_t k) = 0;
};

template <typename S>
class SetAdapter final : public AbstractSet {
 public:
  bool insert(std::uint64_t k) override { return impl_.insert(k); }
  bool remove(std::uint64_t k) override { return impl_.remove(k); }
  bool contains(std::uint64_t k) override { return impl_.contains(k); }

 private:
  S impl_;
};

struct SetFactory {
  const char* name;
  std::unique_ptr<AbstractSet> (*make)();
};

template <typename S>
constexpr SetFactory make_set_factory(const char* name) {
  return SetFactory{name, [] {
                      return std::unique_ptr<AbstractSet>(new SetAdapter<S>());
                    }};
}

const SetFactory kSetFactories[] = {
    make_set_factory<CoarseListSet<std::uint64_t>>("CoarseList"),
    make_set_factory<HandOverHandListSet<std::uint64_t>>("HohList"),
    make_set_factory<OptimisticListSet<std::uint64_t>>("OptimisticList"),
    make_set_factory<LazyListSet<std::uint64_t>>("LazyList"),
    make_set_factory<HarrisMichaelListSet<std::uint64_t, HazardDomain>>(
        "HarrisHP"),
    make_set_factory<HarrisMichaelListSet<std::uint64_t, EpochDomain>>(
        "HarrisEBR"),
    make_set_factory<SplitOrderedHashSet<std::uint64_t>>("SplitOrdered"),
    make_set_factory<CoarseSkipListSet<std::uint64_t>>("CoarseSkip"),
    make_set_factory<LazySkipListSet<std::uint64_t>>("LazySkip"),
    make_set_factory<LockFreeSkipListSet<std::uint64_t>>("LockFreeSkip"),
    make_set_factory<CoarseAvlSet<std::uint64_t>>("CoarseAvl"),
    make_set_factory<TombstoneBstSet<std::uint64_t>>("TombstoneBst"),
    make_set_factory<FineBstSet<std::uint64_t>>("FineBst"),
};

// Param: (factory index, threads, key range, read percent).
using SetSweepParam = std::tuple<int, int, int, int>;

class SetSweepTest : public ::testing::TestWithParam<SetSweepParam> {};

TEST_P(SetSweepTest, ConservationUnderMix) {
  const auto [factory_idx, threads, key_range, read_pct] = GetParam();
  auto set = kSetFactories[factory_idx].make();

  constexpr int kOpsPerThread = 6000;
  std::vector<std::vector<std::int64_t>> net(
      threads, std::vector<std::int64_t>(key_range, 0));
  std::atomic<int> read_failures{0};

  test::run_threads(threads, [&](std::size_t idx) {
    Xoshiro256 rng(idx * 77 + 13);
    auto& mine = net[idx];
    for (int i = 0; i < kOpsPerThread; ++i) {
      const std::uint64_t key = rng.next_below(key_range);
      const int op = static_cast<int>(rng.next_below(100));
      if (op < read_pct) {
        // contains() result is interleaving-dependent; just ensure it does
        // not crash/hang and returns a bool.
        (void)set->contains(key);
      } else if (op % 2 == 0) {
        if (set->insert(key)) mine[key] += 1;
      } else {
        if (set->remove(key)) mine[key] -= 1;
      }
    }
  });

  for (int k = 0; k < key_range; ++k) {
    std::int64_t total = 0;
    for (int t = 0; t < threads; ++t) total += net[t][k];
    ASSERT_GE(total, 0) << "key " << k << ": removes exceeded inserts";
    ASSERT_LE(total, 1) << "key " << k << ": duplicated membership";
    EXPECT_EQ(set->contains(k), total == 1) << "key " << k;
  }
  EXPECT_EQ(read_failures.load(), 0);
}

std::string set_sweep_name(
    const ::testing::TestParamInfo<SetSweepParam>& info) {
  const auto [f, t, r, p] = info.param;
  return std::string(kSetFactories[f].name) + "_t" + std::to_string(t) +
         "_k" + std::to_string(r) + "_r" + std::to_string(p);
}

INSTANTIATE_TEST_SUITE_P(
    AllSets, SetSweepTest,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(std::size(kSetFactories))),
        ::testing::Values(2, 4), ::testing::Values(8, 128),
        ::testing::Values(0, 80)),
    set_sweep_name);

// ---------- queue sweep ----------

class AbstractQueue {
 public:
  virtual ~AbstractQueue() = default;
  virtual void enqueue(std::uint64_t v) = 0;
  virtual std::optional<std::uint64_t> try_dequeue() = 0;
};

template <typename Q>
class QueueAdapter final : public AbstractQueue {
 public:
  void enqueue(std::uint64_t v) override { impl_.enqueue(v); }
  std::optional<std::uint64_t> try_dequeue() override {
    return impl_.try_dequeue();
  }

 private:
  Q impl_;
};

struct QueueFactory {
  const char* name;
  std::unique_ptr<AbstractQueue> (*make)();
};

template <typename Q>
constexpr QueueFactory make_queue_factory(const char* name) {
  return QueueFactory{name, [] {
                        return std::unique_ptr<AbstractQueue>(
                            new QueueAdapter<Q>());
                      }};
}

const QueueFactory kQueueFactories[] = {
    make_queue_factory<LockQueue<std::uint64_t>>("LockQueue"),
    make_queue_factory<TwoLockQueue<std::uint64_t>>("TwoLockQueue"),
    make_queue_factory<MSQueue<std::uint64_t, HazardDomain>>("MSQueueHP"),
    make_queue_factory<MSQueue<std::uint64_t, EpochDomain>>("MSQueueEBR"),
};

using QueueSweepParam = std::tuple<int, int>;  // (factory, threads)

class QueueSweepTest : public ::testing::TestWithParam<QueueSweepParam> {};

TEST_P(QueueSweepTest, ConservationAndPerProducerFifo) {
  const auto [factory_idx, threads] = GetParam();
  auto q = kQueueFactories[factory_idx].make();

  constexpr int kOpsPerThread = 12000;
  std::atomic<std::uint64_t> enqueued{0}, dequeued{0};
  std::atomic<bool> fifo_violation{false};

  test::run_threads(threads, [&](std::size_t idx) {
    Xoshiro256 rng(idx * 31 + 7);
    std::uint64_t next_seq = 0;
    std::vector<std::uint64_t> last_seen(threads, 0);
    std::vector<bool> seen_any(threads, false);
    for (int i = 0; i < kOpsPerThread; ++i) {
      if (rng.next() & 1) {
        q->enqueue((idx << 48) | next_seq++);
        enqueued.fetch_add(1, std::memory_order_relaxed);
      } else if (auto v = q->try_dequeue()) {
        dequeued.fetch_add(1, std::memory_order_relaxed);
        const std::size_t producer = *v >> 48;
        const std::uint64_t seq = *v & 0xffffffffffffull;
        if (seen_any[producer] && seq <= last_seen[producer]) {
          fifo_violation.store(true);
        }
        seen_any[producer] = true;
        last_seen[producer] = seq;
      }
    }
  });

  std::uint64_t leftover = 0;
  while (q->try_dequeue()) ++leftover;
  EXPECT_EQ(dequeued.load() + leftover, enqueued.load());
  EXPECT_FALSE(fifo_violation.load());
}

std::string queue_sweep_name(
    const ::testing::TestParamInfo<QueueSweepParam>& info) {
  const auto [f, t] = info.param;
  return std::string(kQueueFactories[f].name) + "_t" + std::to_string(t);
}

INSTANTIATE_TEST_SUITE_P(
    AllQueues, QueueSweepTest,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(std::size(kQueueFactories))),
        ::testing::Values(2, 4, 8)),
    queue_sweep_name);

}  // namespace
}  // namespace ccds

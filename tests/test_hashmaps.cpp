// Tests for the hash module: the two lock-based maps share a map API; the
// split-ordered set shares the Set API with the list module.  Resizing under
// concurrency and hash-collision handling get dedicated coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "hash/coarse_hash_map.hpp"
#include "hash/split_ordered_set.hpp"
#include "hash/striped_hash_map.hpp"
#include "hash/swiss_hash_map.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

// ---------- typed map tests ----------

template <typename M>
class HashMapTest : public ::testing::Test {};

using HashMapTypes =
    ::testing::Types<CoarseHashMap<std::uint64_t, std::uint64_t>,
                     StripedHashMap<std::uint64_t, std::uint64_t>,
                     SwissHashMap<std::uint64_t, std::uint64_t>,
                     SwissHashMap<std::uint64_t, std::uint64_t,
                                  MixHash<std::uint64_t>, HazardDomain>>;
TYPED_TEST_SUITE(HashMapTest, HashMapTypes);

TYPED_TEST(HashMapTest, BasicMapSemantics) {
  TypeParam m;
  EXPECT_FALSE(m.get(1).has_value());
  EXPECT_TRUE(m.insert(1, 100));
  EXPECT_EQ(m.get(1).value(), 100u);
  EXPECT_FALSE(m.insert(1, 200));  // overwrite, not a new entry
  EXPECT_EQ(m.get(1).value(), 200u);
  EXPECT_TRUE(m.contains(1));
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_FALSE(m.contains(1));
  EXPECT_EQ(m.size(), 0u);
}

TYPED_TEST(HashMapTest, GrowsThroughResizes) {
  TypeParam m(16);
  constexpr std::uint64_t kCount = 20000;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(m.insert(i, i * 3));
  }
  EXPECT_EQ(m.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(m.get(i).value(), i * 3) << "lost key " << i;
  }
}

TYPED_TEST(HashMapTest, ConcurrentDisjointKeys) {
  TypeParam m(16);
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kPerThread;
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      if (!m.insert(base + i, base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      auto v = m.get(base + i);
      if (!v || *v != base + i) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerThread; i += 2) {
      if (!m.erase(base + i)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(m.size(), kThreads * kPerThread / 2);
}

TYPED_TEST(HashMapTest, ConcurrentReadersSeeStableValues) {
  TypeParam m(64);
  for (std::uint64_t i = 0; i < 1000; ++i) m.insert(i, i);
  std::atomic<bool> bad{false};
  test::run_threads(6, [&](std::size_t idx) {
    if (idx < 2) {  // writers churn a disjoint key range
      for (int r = 0; r < 20; ++r) {
        for (std::uint64_t i = 2000; i < 4000; ++i) m.insert(i, i);
        for (std::uint64_t i = 2000; i < 4000; ++i) m.erase(i);
      }
    } else {  // readers check the stable range
      for (int r = 0; r < 20000; ++r) {
        const std::uint64_t k = r % 1000;
        auto v = m.get(k);
        if (!v || *v != k) bad.store(true);
      }
    }
  });
  EXPECT_FALSE(bad.load());
}

TEST(StripedHashMap, StripsActuallyResize) {
  StripedHashMap<std::uint64_t, std::uint64_t> m(64);
  const std::size_t before = m.bucket_count();
  for (std::uint64_t i = 0; i < 10000; ++i) m.insert(i, i);
  EXPECT_GT(m.bucket_count(), before);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_EQ(m.get(i).value(), i);
  }
}

// ---------- swiss map specifics ----------

TEST(SwissHashMap, GrowsByDoublingAndFinishesRehash) {
  SwissHashMap<std::uint64_t, std::uint64_t> m(16);
  const std::size_t cap0 = m.capacity();
  for (std::uint64_t i = 0; i < 10000; ++i) ASSERT_TRUE(m.insert(i, i + 1));
  EXPECT_GT(m.capacity(), cap0);
  // Writers finish migrations cooperatively; after this quiescent point the
  // sequential story must be fully consistent.
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_EQ(m.get(i).value(), i + 1) << "lost key " << i << " in rehash";
  }
  while (m.rehash_in_progress()) {
    m.insert(0, 1);  // any write helps drain the old table
  }
  EXPECT_EQ(m.size(), 10000u);
}

TEST(SwissHashMap, ExplicitGrowPreservesContents) {
  SwissHashMap<std::uint64_t, std::uint64_t> m(64);
  for (std::uint64_t i = 0; i < 40; ++i) m.insert(i, ~i);
  const std::size_t cap = m.capacity();
  m.grow();
  // Reads must be correct mid-migration (old table still partially live).
  for (std::uint64_t i = 0; i < 40; ++i) ASSERT_EQ(m.get(i).value(), ~i);
  for (std::uint64_t i = 0; i < 40; ++i) m.insert(i + 100, i);
  EXPECT_GE(m.capacity(), 2 * cap);
  for (std::uint64_t i = 0; i < 40; ++i) {
    ASSERT_EQ(m.get(i).value(), ~i);
    ASSERT_EQ(m.get(i + 100).value(), i);
  }
}

// Collapse every key into group 0 (hash low bits zero): probe chains spill
// across consecutive groups, exercising the first-empty termination rule,
// tombstone reuse, and cross-group migration.
struct GroupCollidingHash {
  std::uint64_t operator()(const std::uint64_t& k) const noexcept {
    return k << 57;  // tag varies with k & 0x7f; group index always 0
  }
};

TEST(SwissHashMap, ProbeChainsSurviveTombstonesAndGrowth) {
  SwissHashMap<std::uint64_t, std::uint64_t, GroupCollidingHash> m(64);
  for (std::uint64_t i = 0; i < 120; ++i) ASSERT_TRUE(m.insert(i, i * 7));
  // Punch tombstones through the middle of the chain...
  for (std::uint64_t i = 30; i < 90; ++i) ASSERT_TRUE(m.erase(i));
  // ...keys beyond the tombstones must still be reachable.
  for (std::uint64_t i = 90; i < 120; ++i) ASSERT_EQ(m.get(i).value(), i * 7);
  for (std::uint64_t i = 30; i < 90; ++i) ASSERT_FALSE(m.contains(i));
  // Reinsert over the tombstones (must not duplicate), then grow: the
  // rehash drops tombstones wholesale and rebuilds the chain.
  for (std::uint64_t i = 30; i < 90; ++i) ASSERT_TRUE(m.insert(i, i * 9));
  m.grow();
  for (std::uint64_t i = 0; i < 120; ++i) {
    ASSERT_EQ(m.get(i).value(), i < 30 || i >= 90 ? i * 7 : i * 9);
  }
  EXPECT_EQ(m.size(), 120u);
}

TEST(SwissHashMap, ReadersNeverSeeTornValues) {
  // Seqlock runtime check: one key toggles between two bit patterns; any
  // other observed value is a torn read.
  SwissHashMap<std::uint64_t, std::uint64_t> m(64);
  constexpr std::uint64_t kA = 0xaaaaaaaaaaaaaaaaull;
  constexpr std::uint64_t kB = 0x5555555555555555ull;
  m.insert(7, kA);
  std::atomic<bool> torn{false};
  test::run_threads(6, [&](std::size_t idx) {
    if (idx < 2) {
      for (int r = 0; r < 30000; ++r) m.insert(7, (r & 1) ? kA : kB);
    } else {
      for (int r = 0; r < 60000; ++r) {
        const auto v = m.get(7);
        if (!v || (*v != kA && *v != kB)) torn.store(true);
      }
    }
  });
  EXPECT_FALSE(torn.load());
}

TEST(SwissHashMap, ConcurrentChurnAcrossRehashes) {
  // Mixed insert/erase/get across threads on a tiny initial table so the
  // run is dominated by cooperative migrations.
  SwissHashMap<std::uint64_t, std::uint64_t> m(16);
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kPer = 3000;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kPer;
    for (std::uint64_t i = 0; i < kPer; ++i) {
      if (!m.insert(base + i, base + i + 1)) failures.fetch_add(1);
      if (i >= 10 && (i - 10) % 3 != 2) {  // not erased by this thread below
        const auto v = m.get(base + i - 10);
        if (!v || *v != base + i - 9) failures.fetch_add(1);
      }
      if (i % 3 == 2 && !m.erase(base + i)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(m.size(), kThreads * (kPer - kPer / 3));
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPer; ++i) {
      const bool erased = i % 3 == 2;
      ASSERT_EQ(m.contains(t * kPer + i), !erased);
    }
  }
}

TEST(HashMapStringKeys, WorksWithNonTrivialKeys) {
  StripedHashMap<std::string, int, MixHash<std::string>> m;
  EXPECT_TRUE(m.insert("alpha", 1));
  EXPECT_TRUE(m.insert("beta", 2));
  EXPECT_FALSE(m.insert("alpha", 10));
  EXPECT_EQ(m.get("alpha").value(), 10);
  EXPECT_TRUE(m.erase("beta"));
  EXPECT_FALSE(m.contains("beta"));
}

// ---------- split-ordered set ----------

template <typename S>
class SplitOrderedTest : public ::testing::Test {};

using SplitOrderedTypes =
    ::testing::Types<SplitOrderedHashSet<std::uint64_t, MixHash<std::uint64_t>,
                                         HazardDomain>,
                     SplitOrderedHashSet<std::uint64_t, MixHash<std::uint64_t>,
                                         EpochDomain>>;
TYPED_TEST_SUITE(SplitOrderedTest, SplitOrderedTypes);

TYPED_TEST(SplitOrderedTest, BasicSetSemantics) {
  TypeParam s;
  EXPECT_FALSE(s.contains(42));
  EXPECT_TRUE(s.insert(42));
  EXPECT_FALSE(s.insert(42));
  EXPECT_TRUE(s.contains(42));
  EXPECT_TRUE(s.remove(42));
  EXPECT_FALSE(s.remove(42));
  EXPECT_FALSE(s.contains(42));
}

TYPED_TEST(SplitOrderedTest, GrowsWithoutLosingKeys) {
  TypeParam s;
  constexpr std::uint64_t kCount = 50000;
  const std::size_t buckets_before = s.bucket_count();
  for (std::uint64_t i = 0; i < kCount; ++i) ASSERT_TRUE(s.insert(i));
  EXPECT_GT(s.bucket_count(), buckets_before);  // table doubled repeatedly
  EXPECT_EQ(s.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(s.contains(i)) << "lost key " << i << " across resizes";
  }
  EXPECT_FALSE(s.contains(kCount + 1));
}

TYPED_TEST(SplitOrderedTest, RemoveHalfKeepHalf) {
  TypeParam s;
  for (std::uint64_t i = 0; i < 10000; ++i) ASSERT_TRUE(s.insert(i));
  for (std::uint64_t i = 0; i < 10000; i += 2) ASSERT_TRUE(s.remove(i));
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_EQ(s.contains(i), (i % 2) == 1);
  }
  EXPECT_EQ(s.size(), 5000u);
}

TYPED_TEST(SplitOrderedTest, ConcurrentDisjointRanges) {
  TypeParam s;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 4000;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * kPerThread;
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      if (!s.insert(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      if (!s.contains(base + i)) failures.fetch_add(1);
    }
    for (std::uint64_t i = 0; i < kPerThread; i += 2) {
      if (!s.remove(base + i)) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(s.size(), kThreads * kPerThread / 2);
}

TYPED_TEST(SplitOrderedTest, SharedRangeConservation) {
  TypeParam s;
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kKeys = 64;
  constexpr int kOps = 15000;
  std::vector<std::vector<std::int64_t>> net(
      kThreads, std::vector<std::int64_t>(kKeys, 0));

  test::run_threads(kThreads, [&](std::size_t idx) {
    auto& mine = net[idx];
    std::uint64_t state = idx * 104729 + 17;
    for (int i = 0; i < kOps; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t key = (state >> 33) % kKeys;
      if ((state >> 13) & 1) {
        if (s.insert(key)) mine[key] += 1;
      } else {
        if (s.remove(key)) mine[key] -= 1;
      }
    }
  });

  for (std::uint64_t k = 0; k < kKeys; ++k) {
    std::int64_t total = 0;
    for (std::size_t t = 0; t < kThreads; ++t) total += net[t][k];
    ASSERT_GE(total, 0);
    ASSERT_LE(total, 1);
    EXPECT_EQ(s.contains(k), total == 1);
  }
}

// Force split-order collisions: a hash that collapses keys into 8 classes,
// exercising the equal-so_key collision-run scan.
struct CollidingHash {
  std::uint64_t operator()(const std::uint64_t& k) const noexcept {
    return mix64(k % 8);
  }
};

TEST(SplitOrderedCollisions, CollidingKeysAllStoredAndDistinct) {
  SplitOrderedHashSet<std::uint64_t, CollidingHash> s;
  for (std::uint64_t i = 0; i < 512; ++i) ASSERT_TRUE(s.insert(i));
  for (std::uint64_t i = 0; i < 512; ++i) ASSERT_FALSE(s.insert(i));
  for (std::uint64_t i = 0; i < 512; ++i) ASSERT_TRUE(s.contains(i));
  for (std::uint64_t i = 0; i < 512; i += 3) ASSERT_TRUE(s.remove(i));
  for (std::uint64_t i = 0; i < 512; ++i) {
    ASSERT_EQ(s.contains(i), (i % 3) != 0);
  }
}

TEST(SplitOrderedCollisions, ConcurrentCollidingChurn) {
  SplitOrderedHashSet<std::uint64_t, CollidingHash> s;
  std::atomic<int> failures{0};
  test::run_threads(6, [&](std::size_t idx) {
    const std::uint64_t base = idx * 1000;
    for (int round = 0; round < 30; ++round) {
      for (std::uint64_t i = 0; i < 50; ++i) {
        if (!s.insert(base + i)) failures.fetch_add(1);
      }
      for (std::uint64_t i = 0; i < 50; ++i) {
        if (!s.contains(base + i)) failures.fetch_add(1);
      }
      for (std::uint64_t i = 0; i < 50; ++i) {
        if (!s.remove(base + i)) failures.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(s.size(), 0u);
}

}  // namespace
}  // namespace ccds

// Tests for RcuCell: snapshot stability, update atomicity (no lost
// updates), torn-free reads of multi-field values, and reclamation of old
// versions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "reclaim/rcu_cell.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

struct Config {
  std::uint64_t version = 0;
  std::uint64_t checksum = 0;  // invariant: checksum == version * 3
  bool operator==(const Config&) const = default;
};

TEST(RcuCell, SingleThreadedReadUpdate) {
  RcuCell<Config> cell(Config{1, 3});
  {
    auto snap = cell.read();
    EXPECT_EQ(snap->version, 1u);
    EXPECT_EQ(snap->checksum, 3u);
  }
  cell.update([](Config& c) {
    c.version = 2;
    c.checksum = 6;
  });
  EXPECT_EQ(cell.load().version, 2u);
}

TEST(RcuCell, SnapshotIsStableAcrossUpdates) {
  RcuCell<std::uint64_t> cell(10);
  auto snap = cell.read();
  cell.store(20);
  cell.store(30);
  EXPECT_EQ(*snap, 10u) << "snapshot changed under the reader";
  EXPECT_EQ(cell.load(), 30u);
}

TEST(RcuCell, NoLostUpdates) {
  RcuCell<std::uint64_t> cell(0);
  constexpr int kThreads = 6;
  constexpr int kIters = 2000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) {
      cell.update([](std::uint64_t& v) { ++v; });
    }
  });
  EXPECT_EQ(cell.load(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(RcuCell, ReadersNeverSeeTornVersions) {
  RcuCell<Config> cell(Config{0, 0});
  std::atomic<bool> torn{false};

  test::run_threads(5, [&](std::size_t idx) {
    if (idx == 0) {  // writer
      for (std::uint64_t i = 1; i <= 5000; ++i) {
        cell.update([i](Config& c) {
          c.version = i;
          c.checksum = i * 3;
        });
      }
    } else {  // readers
      for (int i = 0; i < 20000; ++i) {
        auto snap = cell.read();
        if (snap->checksum != snap->version * 3) torn.store(true);
      }
    }
  });
  EXPECT_FALSE(torn.load());
  const Config final_value = cell.load();
  EXPECT_EQ(final_value.version, 5000u);
}

TEST(RcuCell, OldVersionsAreReclaimed) {
  RcuCell<std::uint64_t> cell(0);
  for (std::uint64_t i = 1; i <= 3000; ++i) cell.store(i);
  for (int i = 0; i < 8; ++i) cell.domain().collect_all();
  // ~3000 versions were retired; nearly all must have been freed.
  EXPECT_LT(cell.domain().retired_count(), 600u);
}

TEST(RcuCell, ConcurrentMixedReadersWriters) {
  RcuCell<std::vector<int>> cell(std::vector<int>{});
  std::atomic<bool> bad{false};
  test::run_threads(4, [&](std::size_t idx) {
    if (idx < 2) {  // writers append their id
      for (int i = 0; i < 1000; ++i) {
        cell.update([&](std::vector<int>& v) {
          v.push_back(static_cast<int>(idx));
        });
      }
    } else {  // readers: vector must always be a valid prefix-consistent copy
      for (int i = 0; i < 5000; ++i) {
        auto snap = cell.read();
        std::size_t count0 = 0, count1 = 0;
        for (int x : *snap) {
          if (x == 0) ++count0;
          if (x == 1) ++count1;
        }
        if (count0 + count1 != snap->size()) bad.store(true);
      }
    }
  });
  EXPECT_FALSE(bad.load());
  auto final_vec = cell.load();
  EXPECT_EQ(final_vec.size(), 2000u);
}

}  // namespace
}  // namespace ccds

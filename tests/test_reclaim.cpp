// Tests for the memory-reclamation domains.  Destruction counting via a
// canary type observes exactly when the domain frees nodes: protected nodes
// must survive, unprotected retired nodes must eventually be freed, and
// domain destruction must free everything.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/asymmetric_fence.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/leaky.hpp"
#include "reclaim/qsbr.hpp"
#include "reclaim/reclaim.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

std::atomic<std::int64_t> g_live{0};

struct Canary {
  std::uint64_t payload = 0xdeadbeef;
  Canary() { g_live.fetch_add(1, std::memory_order_relaxed); }
  ~Canary() {
    payload = 0;  // poison so use-after-free is more likely to be seen
    g_live.fetch_sub(1, std::memory_order_relaxed);
  }
};

class ReclaimTest : public ::testing::Test {
 protected:
  void SetUp() override { g_live.store(0); }
};

// ---------- leaky ----------

TEST_F(ReclaimTest, LeakyHoldsEverythingUntilDestruction) {
  {
    LeakyDomain dom;
    for (int i = 0; i < 100; ++i) dom.retire(new Canary);
    EXPECT_EQ(dom.retired_count(), 100u);
    EXPECT_EQ(g_live.load(), 100);
  }
  EXPECT_EQ(g_live.load(), 0);  // destructor freed the graveyard
}

TEST_F(ReclaimTest, LeakyGuardReadsThrough) {
  LeakyDomain dom;
  std::atomic<Canary*> src{new Canary};
  auto g = dom.guard();
  Canary* p = g.protect(0, src);
  EXPECT_EQ(p->payload, 0xdeadbeefu);
  delete p;
}

// ---------- hazard pointers ----------

TEST_F(ReclaimTest, HazardFreesUnprotectedNodes) {
  HazardDomain dom;
  // Exceed the scan threshold so scans actually run.
  for (int i = 0; i < 2000; ++i) dom.retire(new Canary);
  dom.collect();
  EXPECT_LT(g_live.load(), 300);  // nearly everything freed
}

TEST_F(ReclaimTest, HazardProtectedNodeSurvivesScans) {
  HazardDomain dom;
  std::atomic<Canary*> src{new Canary};
  Canary* target = src.load();

  std::atomic<bool> protected_flag{false};
  std::atomic<bool> release{false};

  std::thread holder([&] {
    auto g = dom.guard();
    Canary* p = g.protect(0, src);
    EXPECT_EQ(p, target);
    protected_flag.store(true);
    while (!release.load()) std::this_thread::yield();
    // Node must still be intact: scans on the other thread ran meanwhile.
    EXPECT_EQ(p->payload, 0xdeadbeefu);
  });

  while (!protected_flag.load()) std::this_thread::yield();
  src.store(nullptr);
  dom.retire(target);
  for (int i = 0; i < 2000; ++i) dom.retire(new Canary);  // force scans
  dom.collect();
  EXPECT_GE(g_live.load(), 1);  // the protected canary is alive

  release.store(true);
  holder.join();
  dom.collect();
  EXPECT_EQ(g_live.load() >= 0, true);
}

TEST_F(ReclaimTest, HazardDestructorFreesRemainder) {
  {
    HazardDomain dom;
    for (int i = 0; i < 50; ++i) dom.retire(new Canary);  // below threshold
    EXPECT_EQ(g_live.load(), 50);
  }
  EXPECT_EQ(g_live.load(), 0);
}

TEST_F(ReclaimTest, HazardProtectTracksMovingSource) {
  HazardDomain dom;
  std::atomic<Canary*> src{new Canary};
  std::atomic<bool> stop{false};

  std::thread mutator([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      Canary* old = src.exchange(new Canary);
      dom.retire(old);
    }
  });

  // Reader does a fixed amount of work so the test is scheduling-independent
  // (on a single-core host the mutator may otherwise finish before the
  // reader runs at all).
  for (int i = 0; i < 20000; ++i) {
    auto g = dom.guard();
    Canary* p = g.protect(0, src);
    // Use-after-free here would read poisoned payload (or crash under ASan).
    ASSERT_EQ(p->payload, 0xdeadbeefu);
  }
  stop.store(true, std::memory_order_relaxed);
  mutator.join();
  dom.retire(src.load());
}

TEST_F(ReclaimTest, HazardMultipleSlots) {
  HazardDomain dom;
  std::atomic<Canary*> a{new Canary}, b{new Canary}, c{new Canary};
  auto g = dom.guard();
  Canary* pa = g.protect(0, a);
  Canary* pb = g.protect(1, b);
  Canary* pc = g.protect(2, c);
  a.store(nullptr);
  b.store(nullptr);
  c.store(nullptr);
  dom.retire(pa);
  dom.retire(pb);
  dom.retire(pc);
  for (int i = 0; i < 2000; ++i) dom.retire(new Canary);
  dom.collect();
  EXPECT_EQ(pa->payload, 0xdeadbeefu);
  EXPECT_EQ(pb->payload, 0xdeadbeefu);
  EXPECT_EQ(pc->payload, 0xdeadbeefu);
}

// ---------- epochs ----------

TEST_F(ReclaimTest, EpochFreesAfterAdvances) {
  EpochDomain dom;
  for (int i = 0; i < 300; ++i) dom.retire(new Canary);
  // No pinned threads: repeated collects advance the epoch and free.
  for (int i = 0; i < 6; ++i) dom.collect();
  EXPECT_EQ(g_live.load(), 0);
}

TEST_F(ReclaimTest, EpochPinBlocksReclamation) {
  EpochDomain dom;
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::atomic<Canary*> src{new Canary};
  Canary* target = src.load();

  std::thread holder([&] {
    auto g = dom.guard();  // pin
    Canary* p = g.protect(0, src);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
    EXPECT_EQ(p->payload, 0xdeadbeefu);
  });

  while (!pinned.load()) std::this_thread::yield();
  src.store(nullptr);
  dom.retire(target);
  for (int i = 0; i < 6; ++i) dom.collect();
  // The pinned thread froze the epoch before our retire stamp could age out.
  EXPECT_GE(g_live.load(), 1);
  EXPECT_EQ(target->payload, 0xdeadbeefu);

  release.store(true);
  holder.join();
  for (int i = 0; i < 6; ++i) dom.collect();
  EXPECT_EQ(g_live.load(), 0);
}

TEST_F(ReclaimTest, EpochAdvancesWithActiveReaders) {
  // Readers that repeatedly re-pin must not block reclamation forever.
  EpochDomain dom;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto g = dom.guard();
      (void)g;
    }
  });

  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 300; ++i) dom.retire(new Canary);
    dom.collect();
  }
  stop.store(true);
  reader.join();
  for (int i = 0; i < 8; ++i) dom.collect();
  EXPECT_EQ(g_live.load(), 0);
}

TEST_F(ReclaimTest, EpochStressManyThreads) {
  EpochDomain dom;
  std::atomic<Canary*> src{new Canary};
  constexpr int kThreads = 6;
  test::run_threads(kThreads, [&](std::size_t idx) {
    if (idx == 0) {  // mutator
      for (int i = 0; i < 20000; ++i) {
        Canary* old = src.exchange(new Canary, std::memory_order_acq_rel);
        dom.retire(old);
      }
    } else {  // readers
      for (int i = 0; i < 20000; ++i) {
        auto g = dom.guard();
        Canary* p = g.protect(0, src);
        ASSERT_EQ(p->payload, 0xdeadbeefu);
      }
    }
  });
  dom.retire(src.load());
  for (int i = 0; i < 8; ++i) dom.collect_all();
  EXPECT_EQ(g_live.load(), 0);
}

// ---------- QSBR ----------

TEST_F(ReclaimTest, QsbrFreesAfterCollects) {
  QsbrDomain dom;
  for (int i = 0; i < 300; ++i) dom.retire(new Canary);
  // The retiring thread never onlined (no guard), so its slot is kOffline
  // and every collect() can advance the epoch; three advances age the
  // stamps out (stamp + 3 <= E).
  for (int i = 0; i < 8; ++i) dom.collect();
  EXPECT_EQ(g_live.load(), 0);
}

TEST_F(ReclaimTest, QsbrGuardedReaderBlocksReclamation) {
  QsbrDomain dom;
  std::atomic<bool> onlined{false};
  std::atomic<bool> release{false};
  std::atomic<Canary*> src{new Canary};
  Canary* target = src.load();

  std::thread holder([&] {
    auto g = dom.guard();  // onlines this thread; no boundary until dtor
    Canary* p = g.protect(0, src);
    onlined.store(true);
    while (!release.load()) std::this_thread::yield();
    EXPECT_EQ(p->payload, 0xdeadbeefu);
  });

  while (!onlined.load()) std::this_thread::yield();
  src.store(nullptr);
  dom.retire(target);
  for (int i = 0; i < 6; ++i) dom.collect();
  // The holder is announced at its onlining epoch: the global epoch cannot
  // move more than one past it, so the retire stamp cannot age out.
  EXPECT_GE(g_live.load(), 1);
  EXPECT_EQ(target->payload, 0xdeadbeefu);
  release.store(true);
  holder.join();
  dom.collect_all();
  EXPECT_EQ(g_live.load(), 0);
}

TEST_F(ReclaimTest, QsbrIdleOnlineThreadFreezesReclamationUntilCollectAll) {
  // THE defining QSBR hazard (docs/algorithms.md): a LIVE thread that
  // onlined once and then stopped passing operation boundaries freezes the
  // epoch — even with its guard long closed, since threads never
  // self-offline.  (A thread that EXITS is different: its registry id is
  // recycled, and the next owner of the id adopts — and keeps refreshing —
  // the announcement slot.)
  QsbrDomain dom;
  std::atomic<bool> idle{false};
  std::atomic<bool> release{false};
  std::thread idler([&] {
    {
      auto g = dom.guard();  // online + one boundary at guard death
      (void)g;
    }
    idle.store(true);
    while (!release.load()) std::this_thread::yield();  // alive, no boundaries
  });
  while (!idle.load()) std::this_thread::yield();

  std::atomic<Canary*> src{new Canary};
  Canary* target = src.exchange(nullptr);
  dom.retire(target);
  for (int i = 0; i < 8; ++i) dom.collect();
  // One advance past the idler's last announcement is possible; the +3
  // grace can never be met, so the garbage sticks.
  EXPECT_GE(g_live.load(), 1);
  EXPECT_EQ(target->payload, 0xdeadbeefu);

  // collect_all (quiescent-only: the idler holds no guard) force-offlines
  // every slot and drains.  The idler would re-online on its next guard.
  dom.collect_all();
  EXPECT_EQ(dom.retired_count(), 0u);
  EXPECT_EQ(g_live.load(), 0);

  release.store(true);
  idler.join();
}

TEST_F(ReclaimTest, QsbrBoundariesKeepEpochAdvancing) {
  // A reader that keeps passing boundaries (guard per operation) must not
  // block reclamation: the mirror of EpochAdvancesWithActiveReaders.
  QsbrDomain dom;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto g = dom.guard();
      (void)g;
    }
  });

  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 300; ++i) dom.retire(new Canary);
    dom.collect();
  }
  stop.store(true);
  reader.join();
  dom.collect_all();  // the exited reader's slot needs the force-offline
  EXPECT_EQ(g_live.load(), 0);
}

TEST_F(ReclaimTest, QsbrStressManyThreads) {
  QsbrDomain dom;
  std::atomic<Canary*> src{new Canary};
  constexpr int kThreads = 6;
  test::run_threads(kThreads, [&](std::size_t idx) {
    if (idx == 0) {  // mutator
      for (int i = 0; i < 20000; ++i) {
        Canary* old = src.exchange(new Canary, std::memory_order_acq_rel);
        dom.retire(old);
      }
    } else {  // readers: guard = online + boundary; protect = plain load
      for (int i = 0; i < 20000; ++i) {
        auto g = dom.guard();
        Canary* p = g.protect(0, src);
        ASSERT_EQ(p->payload, 0xdeadbeefu);
      }
    }
  });
  dom.retire(src.load());
  dom.collect_all();
  EXPECT_EQ(dom.retired_count(), 0u);
  EXPECT_EQ(g_live.load(), 0);
}

TEST_F(ReclaimTest, QsbrLeaseAmortizedReadPath) {
  QsbrDomain dom;
  std::atomic<Canary*> src{new Canary};
  {
    auto l = dom.lease();
    Canary* p = l.protect(0, src);
    EXPECT_EQ(p->payload, 0xdeadbeefu);
  }
  // A lease leaves the announcement standing (no boundary at scope exit):
  // collects alone cannot advance past it...
  std::atomic<Canary*> next{new Canary};
  Canary* old = src.exchange(next.load());
  dom.retire(old);
  for (int i = 0; i < 6; ++i) dom.collect();
  // ...but this thread's own collect() passes a checkpoint, which counts
  // as the boundary, so reclamation does proceed here.  The lease contract
  // only delays OTHER threads' reclamation until this thread leases again.
  EXPECT_EQ(g_live.load(), 1);
  dom.retire(src.load());
  dom.collect_all();
  EXPECT_EQ(g_live.load(), 0);
}

TEST_F(ReclaimTest, QsbrReentrantRetireFromDeleter) {
  struct Node {
    QsbrDomain* dom;
    Canary canary;
    explicit Node(QsbrDomain* d) : dom(d) {}
    ~Node() { dom->retire(new Canary); }  // reenters retire() mid-collect
  };
  {
    QsbrDomain dom;
    for (int i = 0; i < 600; ++i) dom.retire(new Node(&dom));
    for (int i = 0; i < 12; ++i) dom.collect();
  }  // destructor drains nested retires to a fixpoint
  EXPECT_EQ(g_live.load(), 0);
}

TEST_F(ReclaimTest, SeqCstQsbrBaselineStillReclaims) {
  SeqCstQsbrDomain dom;
  for (int i = 0; i < 300; ++i) dom.retire(new Canary);
  for (int i = 0; i < 8; ++i) dom.collect();
  EXPECT_EQ(g_live.load(), 0);
}

// ---------- cross-domain drain contract ----------
//
// Every domain promises: at quiescence (no guards, no leases, no
// concurrent retires), collect_all() frees EVERYTHING retired so far and
// leaves retired_count() == 0.  The ablation harness and the structure
// destructors lean on this being uniform across policies.

template <typename D>
class DrainContractTest : public ::testing::Test {
 protected:
  void SetUp() override { g_live.store(0); }
};

using AllDomains = ::testing::Types<LeakyDomain, HazardDomain, EpochDomain,
                                    QsbrDomain, EpochLeaseDomain,
                                    LeasedDomain<QsbrDomain>>;
TYPED_TEST_SUITE(DrainContractTest, AllDomains);

TYPED_TEST(DrainContractTest, CollectAllDrainsEverythingAtQuiescence) {
  static_assert(reclaimer<TypeParam>);
  TypeParam dom;
  {
    auto g = dom.guard();
    std::atomic<Canary*> src{new Canary};
    Canary* p = g.protect(0, src);
    EXPECT_EQ(p->payload, 0xdeadbeefu);
    dom.retire(src.load());
  }
  for (int i = 0; i < 500; ++i) dom.retire(new Canary);
  dom.collect_all();
  EXPECT_EQ(dom.retired_count(), 0u);
  EXPECT_EQ(g_live.load(), 0);
}

TYPED_TEST(DrainContractTest, RetiredCountTracksBacklog) {
  TypeParam dom;
  for (int i = 0; i < 100; ++i) dom.retire(new Canary);
  EXPECT_EQ(dom.retired_count(), 100u);  // below every domain's threshold
  dom.collect_all();
  EXPECT_EQ(dom.retired_count(), 0u);
}

// ---------- asymmetric fence ----------

TEST_F(ReclaimTest, AsymmetricHeavyUsesMembarrierWhereAvailable) {
  // Exercise the heavy barrier directly (first call performs the one-time
  // registration; later calls hit the fast path).
  for (int i = 0; i < 4; ++i) asymmetric_heavy();
  const AsymmetricHeavyBackend backend = asymmetric_heavy_backend();
#ifdef __linux__
  if (backend == AsymmetricHeavyBackend::kSeqCstFence) {
    // Kernel lacks (or seccomp blocks) PRIVATE_EXPEDITED.  A local fence
    // on the reclaimer alone cannot drain a reader's store buffer, so on
    // this configuration the reader side MUST pay a real fence too (the
    // symmetric fallback).  This is the exact configuration that would
    // ship a use-after-free if the coupling ever broke — so it FAILS, not
    // skips, if asymmetric_light() is still compiler-only here.
    EXPECT_TRUE(asymmetric_light_is_fence())
        << "UNSOUND: heavy barrier degraded to a local fence but "
           "asymmetric_light() is compiler-only; the Dekker store-load "
           "conflict needs a StoreLoad fence on BOTH sides";
  } else {
    // On any Linux kernel >= 4.14 — including CI runners — the expedited
    // membarrier fast path must be what protected reads rely on, and the
    // reader side must be fence-free (the whole point of the protocol).
    EXPECT_EQ(backend, AsymmetricHeavyBackend::kMembarrier);
    EXPECT_FALSE(asymmetric_light_is_fence());
  }
#else
  EXPECT_EQ(backend, AsymmetricHeavyBackend::kSeqCstFence);
  EXPECT_TRUE(asymmetric_light_is_fence());
#endif
}

// ---------- reentrant deleters ----------
//
// A node's destructor may retire() further nodes on the SAME domain from
// the same thread (e.g. a tree node releasing children).  If such a nested
// retire crosses the scan threshold mid-scan, the nested pass must be
// deferred — not run against the scratch buffers and bag the outer pass is
// iterating (which double-frees or leaks).  ASan turns any such corruption
// into a hard failure; the canary count checks nothing is leaked or freed
// twice.

TEST_F(ReclaimTest, HazardReentrantRetireFromDeleter) {
  struct Node {
    BasicHazardDomain<8>* dom;
    Canary canary;
    explicit Node(BasicHazardDomain<8>* d) : dom(d) {}
    ~Node() { dom->retire(new Canary); }  // reenters retire() mid-scan
  };
  {
    // Threshold 8: every handful of retires runs a scan whose deleters
    // push fresh garbage into the bag being collected.
    BasicHazardDomain<8> dom;
    for (int i = 0; i < 200; ++i) dom.retire(new Node(&dom));
    for (int i = 0; i < 8; ++i) dom.collect();
  }  // destructor drains nested retires to a fixpoint
  EXPECT_EQ(g_live.load(), 0);
}

TEST_F(ReclaimTest, EpochReentrantRetireFromDeleter) {
  struct Node {
    EpochDomain* dom;
    Canary canary;
    explicit Node(EpochDomain* d) : dom(d) {}
    ~Node() { dom->retire(new Canary); }  // reenters retire() mid-collect
  };
  {
    EpochDomain dom;
    for (int i = 0; i < 600; ++i) dom.retire(new Node(&dom));
    for (int i = 0; i < 12; ++i) dom.collect();
  }  // destructor drains nested retires to a fixpoint
  EXPECT_EQ(g_live.load(), 0);
}

// The classic fully-fenced protocols are kept as the E11 baseline; they
// must remain correct, not just compile.
TEST_F(ReclaimTest, SeqCstBaselineDomainsStillReclaim) {
  {
    SeqCstHazardDomain dom;
    std::atomic<Canary*> src{new Canary};
    {
      auto g = dom.guard();
      Canary* p = g.protect(0, src);
      EXPECT_EQ(p->payload, 0xdeadbeefu);
    }
    for (int i = 0; i < 2000; ++i) dom.retire(new Canary);
    dom.collect();
    EXPECT_LT(g_live.load(), 300);
    dom.retire(src.load());
  }
  EXPECT_EQ(g_live.load(), 0);
  {
    SeqCstEpochDomain dom;
    for (int i = 0; i < 300; ++i) dom.retire(new Canary);
    for (int i = 0; i < 6; ++i) dom.collect();
    EXPECT_EQ(g_live.load(), 0);
  }
}

// ---------- retire/collect vs readers stress (ASan-backed) ----------
//
// Hammers retire()/collect() concurrently with protected readers and
// asserts (a) live garbage stays bounded while the storm runs — sampled via
// the canary counter, which is safe to read concurrently — and (b) no
// use-after-free: readers check the canary payload on every access, and the
// whole file runs under scripts/run_asan_ubsan.sh where any stale
// dereference aborts.

TEST_F(ReclaimTest, HazardRetireCollectStressBoundedGarbage) {
  HazardDomain dom;
  std::atomic<Canary*> src{new Canary};
  std::atomic<std::int64_t> peak{0};
  constexpr int kThreads = 6;
  constexpr int kOps = 30000;
  // Bound: 1 in-structure + one un-scanned bag (threshold 256) + one
  // protected node per slot per thread, with generous slack for nodes
  // between exchange and retire.
  constexpr std::int64_t kBound = 1 + 256 + kThreads * 8 + 64;
  test::run_threads(kThreads, [&](std::size_t idx) {
    if (idx == 0) {  // mutator: retire storm (scans trigger at threshold)
      for (int i = 0; i < kOps; ++i) {
        Canary* old = src.exchange(new Canary, std::memory_order_acq_rel);
        dom.retire(old);
      }
    } else if (idx == 1) {  // collector: extra scans + bound sampling
      for (int i = 0; i < kOps / 10; ++i) {
        dom.collect();
        const std::int64_t live = g_live.load(std::memory_order_relaxed);
        std::int64_t p = peak.load(std::memory_order_relaxed);
        while (live > p &&
               !peak.compare_exchange_weak(p, live, std::memory_order_relaxed)) {
        }
      }
    } else {  // readers: protected access must never see a freed canary
      for (int i = 0; i < kOps; ++i) {
        auto g = dom.guard();
        Canary* p = g.protect(0, src);
        ASSERT_EQ(p->payload, 0xdeadbeefu);
      }
    }
  });
  EXPECT_LE(peak.load(), kBound) << "hazard-pointer garbage not bounded";
  dom.retire(src.load());
  dom.collect_all();
  EXPECT_EQ(dom.retired_count(), 0u);
  EXPECT_EQ(g_live.load(), 0);
}

TEST_F(ReclaimTest, EpochRetireCollectStressBoundedReclamation) {
  EpochDomain dom;
  std::atomic<Canary*> src{new Canary};
  constexpr int kThreads = 6;
  constexpr int kOps = 30000;
  test::run_threads(kThreads, [&](std::size_t idx) {
    if (idx == 0) {  // mutator
      for (int i = 0; i < kOps; ++i) {
        Canary* old = src.exchange(new Canary, std::memory_order_acq_rel);
        dom.retire(old);
      }
    } else if (idx == 1) {  // collector
      for (int i = 0; i < kOps / 10; ++i) dom.collect();
    } else {  // readers pin/unpin continuously
      for (int i = 0; i < kOps; ++i) {
        auto g = dom.guard();
        Canary* p = g.protect(0, src);
        ASSERT_EQ(p->payload, 0xdeadbeefu);
      }
    }
  });
  // Readers pin transiently, so epoch advances kept happening and the
  // retire storm cannot have accumulated unboundedly: after the storm the
  // surviving garbage must be a small multiple of the collect threshold,
  // not a constant fraction of the 30k retired nodes.
  EXPECT_LE(dom.retired_count(), 4096u) << "epoch reclamation stalled";
  dom.retire(src.load());
  dom.collect_all();
  EXPECT_EQ(dom.retired_count(), 0u);
  EXPECT_EQ(g_live.load(), 0);
}

TEST_F(ReclaimTest, HazardStressManyThreads) {
  HazardDomain dom;
  std::atomic<Canary*> src{new Canary};
  constexpr int kThreads = 6;
  test::run_threads(kThreads, [&](std::size_t idx) {
    if (idx == 0) {
      for (int i = 0; i < 20000; ++i) {
        Canary* old = src.exchange(new Canary, std::memory_order_acq_rel);
        dom.retire(old);
      }
    } else {
      for (int i = 0; i < 20000; ++i) {
        auto g = dom.guard();
        Canary* p = g.protect(0, src);
        ASSERT_EQ(p->payload, 0xdeadbeefu);
      }
    }
  });
  dom.retire(src.load());
  dom.collect();
  SUCCEED();  // destructor frees remainder; ASan would flag any UAF
}

}  // namespace
}  // namespace ccds

// Tests for the counter spectrum.  The linearizability witness for a
// fetch-and-add counter is that all returned priors are distinct and cover
// exactly [0, total): any lost update or double-count breaks it.
#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "counter/combining_tree.hpp"
#include "counter/counters.hpp"
#include "sync/spinlock.hpp"
#include "sync/ticket_lock.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

// ---------- typed fetch-add counters ----------

template <typename C>
class FetchAddCounterTest : public ::testing::Test {};

using FetchAddCounters =
    ::testing::Types<LockCounter<std::mutex>, LockCounter<TtasLock>,
                     LockCounter<TicketLock>, AtomicCounter,
                     CombiningTreeCounter>;
TYPED_TEST_SUITE(FetchAddCounterTest, FetchAddCounters);

TYPED_TEST(FetchAddCounterTest, SingleThreadSemantics) {
  TypeParam c;
  EXPECT_EQ(c.load(), 0u);
  EXPECT_EQ(c.fetch_add(1), 0u);
  EXPECT_EQ(c.fetch_add(5), 1u);
  EXPECT_EQ(c.fetch_add(1), 6u);
  EXPECT_EQ(c.load(), 7u);
}

TYPED_TEST(FetchAddCounterTest, ConcurrentSumIsExact) {
  TypeParam c;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) c.fetch_add(1);
  });
  EXPECT_EQ(c.load(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TYPED_TEST(FetchAddCounterTest, PriorsAreAPermutation) {
  TypeParam c;
  constexpr int kThreads = 6;
  constexpr int kIters = 3000;
  std::vector<std::vector<std::uint64_t>> priors(kThreads);
  test::run_threads(kThreads, [&](std::size_t idx) {
    priors[idx].reserve(kIters);
    for (int i = 0; i < kIters; ++i) priors[idx].push_back(c.fetch_add(1));
  });
  std::set<std::uint64_t> all;
  for (auto& v : priors) all.insert(v.begin(), v.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kIters)
      << "duplicate or lost fetch_add result";
  EXPECT_EQ(*all.begin(), 0u);
  EXPECT_EQ(*all.rbegin(), static_cast<std::uint64_t>(kThreads) * kIters - 1);
}

TYPED_TEST(FetchAddCounterTest, PriorsMonotonicPerThread) {
  TypeParam c;
  constexpr int kThreads = 4;
  constexpr int kIters = 3000;
  std::vector<bool> monotonic(kThreads, true);
  test::run_threads(kThreads, [&](std::size_t idx) {
    std::uint64_t last = 0;
    bool first = true;
    for (int i = 0; i < kIters; ++i) {
      const std::uint64_t p = c.fetch_add(1);
      if (!first && p <= last) monotonic[idx] = false;
      last = p;
      first = false;
    }
  });
  for (int i = 0; i < kThreads; ++i) EXPECT_TRUE(monotonic[i]);
}

// ---------- sharded counter ----------

TEST(ShardedCounter, SingleThreadSemantics) {
  ShardedCounter c;
  EXPECT_EQ(c.load(), 0u);
  c.add(3);
  c.add();
  EXPECT_EQ(c.load(), 4u);
}

TEST(ShardedCounter, ConcurrentSumIsExactAtQuiescence) {
  ShardedCounter c;
  constexpr int kThreads = 8;
  constexpr int kIters = 100000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) c.add(1);
  });
  EXPECT_EQ(c.load(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ShardedCounter, LoadIsMonotoneUnderConcurrentAdds) {
  ShardedCounter c;
  std::atomic<bool> stop{false};
  std::vector<std::thread> adders;
  for (int i = 0; i < 4; ++i) {
    adders.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c.add(1);
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t now = c.load();
    ASSERT_GE(now, last) << "sharded counter went backwards";
    last = now;
  }
  stop.store(true);
  for (auto& t : adders) t.join();
}

// ---------- combining tree specifics ----------

TEST(CombiningTreeCounter, LargeDeltas) {
  CombiningTreeCounter c;
  test::run_threads(4, [&](std::size_t idx) {
    for (int i = 0; i < 1000; ++i) c.fetch_add(idx + 1);
  });
  EXPECT_EQ(c.load(), 1000u * (1 + 2 + 3 + 4));
}

TEST(CombiningTreeCounter, HighContentionBurst) {
  CombiningTreeCounter c;
  constexpr int kThreads = 16;  // more threads than cores: forces combining
  constexpr int kIters = 2000;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kIters; ++i) c.fetch_add(1);
  });
  EXPECT_EQ(c.load(), static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace ccds

// Oversubscription stress: many more threads than cores.
//
// Preemption in the middle of an operation is the nastiest scheduler
// behaviour for concurrent structures: lock-based designs stall everyone
// behind the preempted holder; lock-free designs must keep global progress.
// Running 16 threads on however few cores the host has maximizes mid-
// operation preemption and explores interleavings the barrier-synchronized
// tests do not.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "counter/combining_counter.hpp"
#include "counter/counters.hpp"
#include "hash/split_ordered_set.hpp"
#include "list/harris_list.hpp"
#include "queue/combining_queue.hpp"
#include "queue/mpmc_queue.hpp"
#include "queue/ms_queue.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "skiplist/lockfree_skiplist.hpp"
#include "stack/elimination_stack.hpp"
#include "stack/treiber_stack.hpp"
#include "core/topology.hpp"
#include "sync/engines.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/spinlock.hpp"
#include "test_util.hpp"

namespace ccds {
namespace {

constexpr std::size_t kThreads = 16;
constexpr int kOps = 4000;

// 4x the hardware for the combining tests: a combiner that gets preempted
// mid-episode stalls every spinning requester, so heavy oversubscription is
// exactly where the handoff protocol earns (or loses) its keep.  Clamped
// into [8, 64] so the test is meaningful on tiny hosts and bounded (and
// under kMaxThreads) on huge ones.
std::size_t oversub_threads() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::clamp<std::size_t>(4 * hw, 8, 64);
}

TEST(Oversubscribed, TreiberStackConservation) {
  TreiberStack<std::uint64_t, HazardDomain> s;
  std::atomic<std::uint64_t> pushed{0}, popped{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kOps; ++i) {
      if ((i + idx) % 2 == 0) {
        s.push(i);
        pushed.fetch_add(1, std::memory_order_relaxed);
      } else if (s.try_pop()) {
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::uint64_t leftover = 0;
  while (s.try_pop()) ++leftover;
  EXPECT_EQ(popped.load() + leftover, pushed.load());
}

TEST(Oversubscribed, EliminationStackConservation) {
  EliminationBackoffStack<std::uint64_t, EpochDomain> s;
  std::atomic<std::uint64_t> pushed{0}, popped{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kOps; ++i) {
      if ((i + idx) % 2 == 0) {
        s.push(i);
        pushed.fetch_add(1, std::memory_order_relaxed);
      } else if (s.try_pop()) {
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::uint64_t leftover = 0;
  while (s.try_pop()) ++leftover;
  EXPECT_EQ(popped.load() + leftover, pushed.load());
}

TEST(Oversubscribed, MSQueueConservation) {
  MSQueue<std::uint64_t, HazardDomain> q;
  std::atomic<std::uint64_t> enq{0}, deq{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kOps; ++i) {
      if ((i + idx) % 2 == 0) {
        q.enqueue(i);
        enq.fetch_add(1, std::memory_order_relaxed);
      } else if (q.try_dequeue()) {
        deq.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::uint64_t leftover = 0;
  while (q.try_dequeue()) ++leftover;
  EXPECT_EQ(deq.load() + leftover, enq.load());
}

TEST(Oversubscribed, MpmcQueueConservation) {
  MpmcQueue<std::uint64_t> q(1024);
  std::atomic<std::uint64_t> enq{0}, deq{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    for (int i = 0; i < kOps; ++i) {
      if ((i + idx) % 2 == 0) {
        if (q.try_enqueue(i)) enq.fetch_add(1, std::memory_order_relaxed);
      } else if (q.try_dequeue()) {
        deq.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::uint64_t leftover = 0;
  while (q.try_dequeue()) ++leftover;
  EXPECT_EQ(deq.load() + leftover, enq.load());
}

TEST(Oversubscribed, HarrisListSetSemantics) {
  HarrisMichaelListSet<std::uint64_t, HazardDomain> s;
  constexpr std::uint64_t kKeys = 24;
  std::vector<std::vector<std::int64_t>> net(
      kThreads, std::vector<std::int64_t>(kKeys, 0));
  test::run_threads(kThreads, [&](std::size_t idx) {
    std::uint64_t state = idx * 65537 + 3;
    for (int i = 0; i < kOps; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t k = (state >> 33) % kKeys;
      if ((state >> 13) & 1) {
        if (s.insert(k)) net[idx][k] += 1;
      } else {
        if (s.remove(k)) net[idx][k] -= 1;
      }
    }
  });
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    std::int64_t total = 0;
    for (std::size_t t = 0; t < kThreads; ++t) total += net[t][k];
    ASSERT_GE(total, 0);
    ASSERT_LE(total, 1);
    EXPECT_EQ(s.contains(k), total == 1);
  }
}

TEST(Oversubscribed, SplitOrderedSetSemantics) {
  SplitOrderedHashSet<std::uint64_t> s;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * 1000;
    for (int round = 0; round < 8; ++round) {
      for (std::uint64_t i = 0; i < 100; ++i) {
        if (!s.insert(base + i)) failures.fetch_add(1);
      }
      for (std::uint64_t i = 0; i < 100; ++i) {
        if (!s.remove(base + i)) failures.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(s.size(), 0u);
}

TEST(Oversubscribed, LockFreeSkipListSemantics) {
  LockFreeSkipListSet<std::uint64_t> s;
  std::atomic<int> failures{0};
  test::run_threads(kThreads, [&](std::size_t idx) {
    const std::uint64_t base = idx * 1000;
    for (int round = 0; round < 8; ++round) {
      for (std::uint64_t i = 0; i < 100; ++i) {
        if (!s.insert(base + i)) failures.fetch_add(1);
      }
      for (std::uint64_t i = 0; i < 100; ++i) {
        if (!s.remove(base + i)) failures.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Oversubscribed, McsLockMutualExclusion) {
  McsLock lock;
  std::uint64_t counter = 0;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kOps; ++i) {
      std::lock_guard<McsLock> g(lock);
      ++counter;
    }
  });
  EXPECT_EQ(counter, kThreads * static_cast<std::uint64_t>(kOps));
}

std::size_t oversub_two_node_map(std::size_t tid) { return tid % 2; }

// Two deterministic topology nodes for the whole binary, so HSynch runs a
// real multi-list hierarchy under oversubscription even on one socket.
class OversubTopologyEnv : public ::testing::Environment {
 public:
  void SetUp() override { override_.emplace(2, &oversub_two_node_map); }
  void TearDown() override { override_.reset(); }

 private:
  std::optional<topology::ScopedOverride> override_;
};

::testing::Environment* const kOversubTopologyEnv =
    ::testing::AddGlobalTestEnvironment(new OversubTopologyEnv);

// Every combining engine at 4x hardware concurrency: every thread's full
// quota of operations must be applied (conservation) and every thread must
// finish its loop (forward progress — for the blocking engines a dropped
// handoff would leave a spinner stuck and hang the test; for PSim a lost
// announce would strand a request).  Per-thread completion counts make a
// partial stall visible as a specific count, not just a timeout.  Engines
// come from the sync/engines.hpp X-macro.
template <typename E>
class CombiningEngineOversubTest : public ::testing::Test {};
#define CCDS_WRAP_U64(E) E<std::uint64_t>
using OversubEngineTypes =
    ::testing::Types<CCDS_COMBINER_ENGINE_LIST(CCDS_WRAP_U64)>;
#undef CCDS_WRAP_U64
TYPED_TEST_SUITE(CombiningEngineOversubTest, OversubEngineTypes);

TYPED_TEST(CombiningEngineOversubTest, ExactnessAt4xHardware) {
  const std::size_t n = oversub_threads();
  TypeParam engine;
  std::vector<std::uint64_t> done(n, 0);
  test::run_threads(n, [&](std::size_t idx) {
    for (int i = 0; i < kOps; ++i) {
      engine.apply([](std::uint64_t& v) { ++v; });
      ++done[idx];
    }
  });
  for (std::size_t t = 0; t < n; ++t) {
    EXPECT_EQ(done[t], static_cast<std::uint64_t>(kOps)) << "thread " << t;
  }
  EXPECT_EQ(engine.apply([](std::uint64_t& v) { return v; }),
            n * static_cast<std::uint64_t>(kOps));
}

// The CombiningQueue front under heavy oversubscription, every engine,
// mixing single ops and batches: enqueues and successful dequeues must
// balance exactly.
template <typename Q>
class CombiningQueueOversubTest : public ::testing::Test {};
#define CCDS_WRAP_QUEUE(E) CombiningQueue<std::uint64_t, E>
using OversubQueueTypes =
    ::testing::Types<CCDS_COMBINER_ENGINE_LIST(CCDS_WRAP_QUEUE)>;
#undef CCDS_WRAP_QUEUE
TYPED_TEST_SUITE(CombiningQueueOversubTest, OversubQueueTypes);

TYPED_TEST(CombiningQueueOversubTest, ConservationAt4xHardware) {
  const std::size_t n = oversub_threads();
  TypeParam q;
  using Op = QueueOp<std::uint64_t>;
  std::atomic<std::uint64_t> enq{0}, deq{0};
  test::run_threads(n, [&](std::size_t idx) {
    for (int i = 0; i < kOps / 4; ++i) {
      if ((i + idx) % 2 == 0) {
        std::vector<Op> ops;
        ops.push_back(Op::enqueue(i));
        ops.push_back(Op::enqueue(i + 1));
        ops.push_back(Op::dequeue());
        q.apply_batch(std::span<Op>(ops));
        enq.fetch_add(2, std::memory_order_relaxed);
        if (ops[2].result) deq.fetch_add(1, std::memory_order_relaxed);
      } else {
        q.enqueue(i);
        enq.fetch_add(1, std::memory_order_relaxed);
        if (q.try_dequeue()) deq.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::uint64_t leftover = 0;
  while (q.try_dequeue()) ++leftover;
  EXPECT_EQ(deq.load() + leftover, enq.load());
  EXPECT_TRUE(q.empty());
}

TEST(Oversubscribed, ShardedCounterExactness) {
  ShardedCounter c;
  test::run_threads(kThreads, [&](std::size_t) {
    for (int i = 0; i < kOps * 4; ++i) c.add(1);
  });
  EXPECT_EQ(c.load(), kThreads * static_cast<std::uint64_t>(kOps) * 4);
}

}  // namespace
}  // namespace ccds

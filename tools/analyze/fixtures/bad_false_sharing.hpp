// A3 seeded-bad fixture: two remotely-written atomics sharing one cache
// line, detected from MEASURED offsets (not member-name patterns).  These
// records are self-contained plain std::atomic so the self-test can
// cross-check every computed offset against the real compiler.
#include <atomic>
#include <cstdint>

namespace fix {

// BAD: producer writes fs_enq, consumer writes fs_deq; offsets 0 and 8
// land on the same 64-byte line, so every write invalidates the other
// side's cache line.
struct FsBadPair {
  std::atomic<std::uint64_t> fs_enq;
  std::atomic<std::uint64_t> fs_deq;  // EXPECT-A3
};

inline void fs_bad_writer_a(FsBadPair& s) {
  s.fs_enq.store(1, std::memory_order_release);
}

inline void fs_bad_writer_b(FsBadPair& s) {
  s.fs_deq.fetch_add(1, std::memory_order_acq_rel);
}

// BAD: aligning the RECORD to the line does not separate the members —
// offsets 0 and 8 still share the first line of the record.
struct alignas(64) FsBadHeadTail {
  std::atomic<std::uint64_t> fs_head;
  std::atomic<std::uint64_t> fs_tail;  // EXPECT-A3
};

inline void fs_bad_writer_c(FsBadHeadTail& s) {
  s.fs_head.store(2, std::memory_order_release);
}

inline void fs_bad_writer_d(FsBadHeadTail& s) {
  s.fs_tail.store(3, std::memory_order_release);
}

}  // namespace fix

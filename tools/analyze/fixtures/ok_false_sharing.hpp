// A3 clean fixture: padded, justified, and read-mostly layouts that the
// measured-offset check must NOT flag.  Self-contained plain std::atomic
// so the self-test can cross-check the computed offsets.
#include <atomic>
#include <cstdint>

namespace fix {

// Padded: each hot counter gets its own 64-byte line (offsets 0 and 64).
struct FsOkPadded {
  alignas(64) std::atomic<std::uint64_t> fs_ok_enq;
  alignas(64) std::atomic<std::uint64_t> fs_ok_deq;
};

inline void fs_ok_writer_a(FsOkPadded& s) {
  s.fs_ok_enq.store(1, std::memory_order_release);
}

inline void fs_ok_writer_b(FsOkPadded& s) {
  s.fs_ok_deq.fetch_add(1, std::memory_order_acq_rel);
}

// unpadded: both fields are written by the single owner thread, so the
// shared line is deliberate (keeps the pair on one line for its reader).
struct FsOkJustified {
  std::atomic<std::uint64_t> fs_ok_a;
  std::atomic<std::uint64_t> fs_ok_b;
};

inline void fs_ok_writer_c(FsOkJustified& s) {
  s.fs_ok_a.store(1, std::memory_order_release);
  s.fs_ok_b.store(2, std::memory_order_release);
}

// A written atomic next to a read-mostly one: no remotely-written PAIR
// forms, so sharing the line is fine.
struct FsOkReadMostly {
  std::atomic<std::uint64_t> fs_ok_hot;
  std::atomic<std::uint64_t> fs_ok_cold;
};

inline std::uint64_t fs_ok_reader(FsOkReadMostly& s) {
  s.fs_ok_hot.fetch_add(1, std::memory_order_acq_rel);
  return s.fs_ok_cold.load(std::memory_order_acquire);
}

}  // namespace fix

// A1 seeded-bad fixture: guard-escape shapes ccds_analyze.py must catch.
// These headers are analyzer inputs only — never compiled into the build.
// Minimal stand-ins for a ccds reclamation domain keep them self-contained.
#include <atomic>
#include <cstddef>

namespace fix {

struct EscNode {
  int key;
  std::atomic<EscNode*> next;
};

struct EscDomain {
  struct Guard {
    EscNode* protect(std::size_t slot, const std::atomic<EscNode*>& src);
    void protect_raw(std::size_t slot, EscNode* p);
    void clear(std::size_t slot);
  };
  Guard guard();
};

struct EscList {
  std::atomic<EscNode*> head_;
  EscNode* cached_;
  EscDomain dom_;

  // BAD: the returned pointer was protected by a guard that dies at
  // return; the caller holds a reference the domain may reclaim.
  EscNode* leak_return() {
    auto g = dom_.guard();
    EscNode* p = g.protect(0, head_);
    return p;  // EXPECT-A1
  }

  // BAD: the protected pointer is stored into a field that outlives the
  // guard's scope.
  void leak_store() {
    auto g = dom_.guard();
    EscNode* p = g.protect(0, head_);
    cached_ = p;  // EXPECT-A1
  }

  // BAD: the pointer is dereferenced after the block holding its guard
  // has closed.
  int leak_stale() {
    EscNode* p = nullptr;
    {
      auto g = dom_.guard();
      p = g.protect(0, head_);
    }
    return p->key;  // EXPECT-A1
  }
};

}  // namespace fix

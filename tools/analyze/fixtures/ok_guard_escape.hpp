// A1/A4 clean fixture: every guard-derived pointer stays inside its
// guard's scope, or the guard belongs to the caller.  The analyzer must
// report NOTHING in this file.
#include <atomic>
#include <cstddef>

namespace fix {

struct OkNode {
  int key;
  std::atomic<OkNode*> nxt;
};

struct OkDomain {
  struct OkGuard {
    OkNode* protect(std::size_t slot, const std::atomic<OkNode*>& src);
    void protect_raw(std::size_t slot, OkNode* p);
    void clear(std::size_t slot);
  };
  OkGuard guard();
  void retire(OkNode* p);
};

struct OkList {
  std::atomic<OkNode*> root_;
  OkDomain dom_;

  using GuardT = OkDomain::OkGuard;

  // The caller owns the guard (harris_list find() shape): pointers
  // protected under it legitimately outlive this function.
  OkNode* find_under(int key, GuardT& g) {
    OkNode* cur = g.protect(0, root_);
    while (cur != nullptr && cur->key < key) {
      OkNode* nx = g.protect(1, cur->nxt);
      cur = nx;
    }
    return cur;
  }

  // Local guard, but the protected pointer never leaves its scope and the
  // return value is a bool conversion, not the pointer.
  bool contains(int key) {
    auto g = dom_.guard();
    OkNode* cur = g.protect(0, root_);
    while (cur != nullptr && cur->key < key) {
      cur = g.protect(1, cur->nxt);
    }
    return cur != nullptr && cur->key == key;
  }

  // Link-field loads under a live local guard are guarded traversal.
  int sum_guarded(int limit) {
    auto g = dom_.guard();
    int acc = 0;
    OkNode* cur = g.protect(0, root_);
    while (cur != nullptr && acc < limit) {
      acc += cur->key;
      cur = cur->nxt.load(std::memory_order_acquire);
      g.protect_raw(0, cur);
    }
    return acc;
  }

  // retire() takes the detached node by value — handing it to the domain
  // after the guard closed is not a dereference.
  void remove_head() {
    OkNode* victim = nullptr;
    {
      auto g = dom_.guard();
      victim = g.protect(0, root_);
    }
    dom_.retire(victim);
  }

  // Destructors run at quiescence by contract: the unguarded teardown
  // walk is exempt from A4.
  ~OkList() {
    OkNode* cur = root_.load(std::memory_order_acquire);
    while (cur != nullptr) {
      OkNode* nx = cur->nxt.load(std::memory_order_acquire);
      delete cur;
      cur = nx;
    }
  }
};

}  // namespace fix

// A4 seeded-bad fixture: traversal of atomic link fields with no
// reclaimer guard anywhere in scope (no local guard, no guard parameter).
#include <atomic>
#include <cstddef>

namespace fix {

struct UNode {
  int key;
  std::atomic<UNode*> fwd;
};

struct UList {
  std::atomic<UNode*> top_;

  // BAD: walks the list's atomic links with nothing protecting the nodes;
  // any concurrent remove() may reclaim a node mid-walk.
  int sum_unguarded(UNode* start) {
    int acc = 0;
    UNode* cur = start;
    while (cur != nullptr) {
      acc += cur->key;
      cur = cur->fwd.load(std::memory_order_acquire);  // EXPECT-A4
    }
    return acc;
  }
};

}  // namespace fix

// A2 clean fixture: every relaxation and every default order binds to a
// house justification comment; the self-test asserts the audit records
// these bindings.
#include <atomic>
#include <cstdint>

namespace fix {

// relaxed: pure statistics counter — readers tolerate any interleaving
// and no other memory is published through it.
inline void mo_ok_stat_bump(std::atomic<std::uint64_t>& mo_ok_stat) {
  mo_ok_stat.fetch_add(1, std::memory_order_relaxed);
}

// seq_cst: this flag is the linearization point of shutdown; the default
// strongest order is deliberate, not an accident.
inline void mo_ok_shutdown(std::atomic<bool>& mo_ok_done) {
  mo_ok_done.store(true);
}

inline std::uint64_t mo_ok_ordered(std::atomic<std::uint64_t>& mo_ok_val) {
  mo_ok_val.store(1, std::memory_order_release);
  return mo_ok_val.load(std::memory_order_acquire);
}

}  // namespace fix

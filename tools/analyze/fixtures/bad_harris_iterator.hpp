// A1 seeded-bad fixture: a deliberately broken Harris-list iterator.
// begin() opens a guard, protects the head node, and parks the raw pointer
// in iterator state that OUTLIVES the guard — the exact escape the paper's
// reclamation argument forbids (src/list/harris_list.hpp instead threads
// the caller's guard through find() so protections outlive the traversal).
#include <atomic>
#include <cstddef>

namespace fix {

struct HNode {
  int key;
  std::atomic<HNode*> link;
};

struct HDomain {
  struct HGuard {
    HNode* protect(std::size_t slot, const std::atomic<HNode*>& src);
    void protect_raw(std::size_t slot, HNode* p);
    void clear(std::size_t slot);
  };
  HGuard guard();
};

template <typename Key>
struct BrokenHarrisIterator {
  HNode* pos_;
  std::atomic<HNode*> head_;
  HDomain dom_;

  // BAD: pos_ survives begin()'s guard; operator++ will dereference a
  // node the domain is free to reclaim the moment begin() returns.
  void begin() {
    auto g = dom_.guard();
    HNode* first = g.protect(0, head_);
    pos_ = first;  // EXPECT-A1
  }
};

}  // namespace fix

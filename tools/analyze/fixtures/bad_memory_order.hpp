// A2 seeded-bad fixture: unjustified relaxations and default orders on
// real call sites, including the shapes the regex lint cannot see
// (multiline argument lists, macro bodies).
#include <atomic>
#include <cstdint>

namespace fix {

inline void mo_bad_bump() {
  static std::atomic<std::uint32_t> mo_ctr{0};
  mo_ctr.fetch_add(1, std::memory_order_relaxed);  // EXPECT-A2R1
}

inline void mo_bad_default_order() {
  static std::atomic<bool> mo_flag{false};
  mo_flag.store(true);  // EXPECT-A2R2
}

inline bool mo_bad_multiline(std::atomic<std::uint32_t>& mo_gen,
                             std::uint32_t& expected) {
  return mo_gen.compare_exchange_weak(  // EXPECT-A2R1
      expected, expected + 1,
      std::memory_order_relaxed,
      std::memory_order_relaxed);
}

// A call site hidden in a macro body: invisible to line-based regexes.
#define CCDS_FIX_BUMP(counter) \
  (counter).fetch_add(1, std::memory_order_relaxed)  // EXPECT-A2R1

inline void mo_bad_macro_user(std::atomic<std::uint64_t>& mo_macro_ctr) {
  CCDS_FIX_BUMP(mo_macro_ctr);
}

}  // namespace fix

// config_service — read-mostly shared state done three ways.
//
// Build & run:   ./build/examples/config_service [readers] [seconds-ish]
//
// A service holds configuration that every request consults and an
// operator occasionally rewrites.  This example runs the same
// readers-vs-reloader workload over the library's three read-optimized
// primitives and reports read throughput:
//
//   * RcuCell<Config>      — readers get an immutable snapshot pointer;
//                            writers copy-update-publish (epoch reclaimed);
//   * SeqLock<Summary>     — readers optimistically copy a small POD and
//                            retry on collision;
//   * RwSpinLock + Config  — the classical reader-writer lock baseline.
//
// Each reader validates every observation (config invariants must hold on
// every read), so the run doubles as a consistency check.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "core/barrier.hpp"
#include "reclaim/rcu_cell.hpp"
#include "sync/rwlock.hpp"
#include "sync/seqlock.hpp"

using namespace ccds;

namespace {

// A "parsed configuration": big enough that copying matters, with an
// internal invariant readers can check.
struct Config {
  std::uint64_t version = 0;
  std::uint64_t limits[16] = {};
  std::uint64_t checksum = 0;  // == version + sum(limits)

  void bump(std::uint64_t v) {
    version = v;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < 16; ++i) {
      limits[i] = v * (i + 1);
      sum += limits[i];
    }
    checksum = version + sum;
  }
  bool valid() const {
    std::uint64_t sum = 0;
    for (auto l : limits) sum += l;
    return checksum == version + sum;
  }
};

// Small POD summary for the seqlock variant.
struct Summary {
  std::uint64_t version;
  std::uint64_t total_limit;
  std::uint64_t checksum;  // == version + total_limit
};

struct Result {
  const char* name;
  std::uint64_t reads;
  std::uint64_t writes;
  bool consistent;
};

template <typename ReadFn, typename WriteFn>
Result run(const char* name, int readers, int iters, ReadFn&& do_read,
           WriteFn&& do_write) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<bool> torn{false};
  SpinBarrier barrier(readers + 2);

  std::vector<std::thread> threads;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!do_read()) torn.store(true);
        ++local;
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }
  std::uint64_t writes = 0;
  threads.emplace_back([&] {
    barrier.arrive_and_wait();
    for (int i = 1; i <= iters; ++i) {
      do_write(static_cast<std::uint64_t>(i));
      ++writes;
      // Writers are rare: give readers room between reloads.
      for (int spin = 0; spin < 2000; ++spin) cpu_relax();
    }
    stop.store(true, std::memory_order_relaxed);
  });

  barrier.arrive_and_wait();
  for (auto& t : threads) t.join();
  return Result{name, reads.load(), writes, !torn.load()};
}

}  // namespace

int main(int argc, char** argv) {
  const int readers = argc > 1 ? std::atoi(argv[1]) : 3;
  const int reload_iters = argc > 2 ? std::atoi(argv[2]) * 2000 : 4000;

  std::printf("config_service: %d readers, %d config reloads per variant\n\n",
              readers, reload_iters);

  std::vector<Result> results;

  {  // RCU
    RcuCell<Config> cell;
    cell.update([](Config& c) { c.bump(0); });
    results.push_back(run(
        "RcuCell (RCU)", readers, reload_iters,
        [&] {
          auto snap = cell.read();
          return snap->valid();
        },
        [&](std::uint64_t v) {
          cell.update([v](Config& c) { c.bump(v); });
        }));
  }

  {  // SeqLock over the summary
    SeqLock<Summary> sl(Summary{0, 0, 0});
    results.push_back(run(
        "SeqLock (summary)", readers, reload_iters,
        [&] {
          const Summary s = sl.read();
          return s.checksum == s.version + s.total_limit;
        },
        [&](std::uint64_t v) {
          Config c;
          c.bump(v);
          std::uint64_t total = 0;
          for (auto l : c.limits) total += l;
          sl.store(Summary{v, total, v + total});
        }));
  }

  {  // Reader-writer lock baseline
    RwSpinLock lock;
    Config cfg;
    cfg.bump(0);
    results.push_back(run(
        "RwSpinLock", readers, reload_iters,
        [&] {
          std::shared_lock<RwSpinLock> g(lock);
          return cfg.valid();
        },
        [&](std::uint64_t v) {
          std::lock_guard<RwSpinLock> g(lock);
          cfg.bump(v);
        }));
  }

  std::printf("  %-20s %14s %10s %12s\n", "variant", "reads", "reloads",
              "consistent");
  bool all_ok = true;
  for (const auto& r : results) {
    std::printf("  %-20s %14llu %10llu %12s\n", r.name,
                static_cast<unsigned long long>(r.reads),
                static_cast<unsigned long long>(r.writes),
                r.consistent ? "yes" : "NO (BUG!)");
    all_ok = all_ok && r.consistent;
  }
  std::printf("\n(reads are throughput-comparable across variants: same "
              "reader count,\n same reload schedule; every read validated "
              "its config invariant)\n");
  return all_ok ? 0 : 1;
}

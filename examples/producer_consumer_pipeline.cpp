// producer_consumer_pipeline — a three-stage streaming pipeline built from
// the right queue for each link.
//
// Build & run:   ./build/examples/producer_consumer_pipeline [items]
//
//   stage 1 (1 thread): generate records
//        |            SpscRing         (1 producer, 1 consumer: no RMW)
//   stage 2 (1 thread): transform (hash + filter)
//        |            MpmcQueue        (1 producer here, N consumers)
//   stage 3 (2 threads): aggregate per-bucket statistics
//
// The point: queue choice is a contract.  The SPSC link is legal only
// because exactly one thread sits on each side; the fan-out link needs
// MPMC.  The pipeline verifies end-to-end conservation (every generated
// record is either filtered or aggregated exactly once).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/arch.hpp"
#include "core/hash.hpp"
#include "core/padded.hpp"
#include "core/rng.hpp"
#include "queue/mpmc_queue.hpp"
#include "queue/spsc_ring.hpp"

using namespace ccds;

namespace {

struct Record {
  std::uint64_t id;
  std::uint64_t payload;
};

constexpr int kBuckets = 8;

struct Aggregates {
  Padded<std::atomic<std::uint64_t>> count[kBuckets] = {};
  Padded<std::atomic<std::uint64_t>> sum[kBuckets] = {};
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t total = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                       : 2000000;
  std::printf("pipeline: %llu records through 3 stages\n",
              static_cast<unsigned long long>(total));

  SpscRing<Record> link1(4096);
  MpmcQueue<Record> link2(4096);
  std::atomic<bool> stage1_done{false};
  std::atomic<bool> stage2_done{false};
  std::atomic<std::uint64_t> filtered{0};
  Aggregates agg;

  const auto t0 = std::chrono::steady_clock::now();

  // Stage 1: generator (sole producer of link1).
  std::thread gen([&] {
    Xoshiro256 rng(1);
    for (std::uint64_t i = 0; i < total; ++i) {
      Record r{i, rng.next()};
      while (!link1.try_push(r)) cpu_relax();
    }
    stage1_done.store(true, std::memory_order_release);
  });

  // Stage 2: transformer (sole consumer of link1, sole producer of link2).
  std::thread xform([&] {
    auto transform = [&](Record r) {
      r.payload = mix64(r.payload);
      if ((r.payload & 0xf) == 0) {  // drop ~1/16
        filtered.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      while (!link2.try_enqueue(r)) cpu_relax();
    };
    for (;;) {
      if (auto r = link1.try_pop()) {
        transform(*r);
      } else if (stage1_done.load(std::memory_order_acquire)) {
        // Generator finished: after one more empty read the ring is truly
        // drained (no new producers exist).  A non-empty read here must
        // still be processed, never dropped.
        if (auto last = link1.try_pop()) {
          transform(*last);
        } else {
          break;
        }
      } else {
        cpu_relax();
      }
    }
    stage2_done.store(true, std::memory_order_release);
  });

  // Stage 3: two aggregators (consumers of link2).
  auto aggregate = [&] {
    auto consume = [&](const Record& r) {
      const int b = static_cast<int>(r.payload % kBuckets);
      agg.count[b]->fetch_add(1, std::memory_order_relaxed);
      agg.sum[b]->fetch_add(r.payload & 0xffff, std::memory_order_relaxed);
    };
    for (;;) {
      if (auto r = link2.try_dequeue()) {
        consume(*r);
      } else if (stage2_done.load(std::memory_order_acquire)) {
        if (auto last = link2.try_dequeue()) {
          consume(*last);
        } else {
          break;
        }
      } else {
        cpu_relax();
      }
    }
  };
  std::thread agg1(aggregate), agg2(aggregate);

  gen.join();
  xform.join();
  agg1.join();
  agg2.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  std::uint64_t aggregated = 0;
  std::printf("\n  %-8s %12s %12s\n", "bucket", "count", "sum(low16)");
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = agg.count[b]->load();
    aggregated += c;
    std::printf("  %-8d %12llu %12llu\n", b,
                static_cast<unsigned long long>(c),
                static_cast<unsigned long long>(agg.sum[b]->load()));
  }

  const bool ok = aggregated + filtered.load() == total;
  std::printf("\n  aggregated %llu + filtered %llu == generated %llu : %s\n",
              static_cast<unsigned long long>(aggregated),
              static_cast<unsigned long long>(filtered.load()),
              static_cast<unsigned long long>(total),
              ok ? "CONSERVED" : "LOST RECORDS (BUG!)");
  std::printf("  throughput: %.1f M records/sec\n", total / secs / 1e6);
  return ok ? 0 : 1;
}

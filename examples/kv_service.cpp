// kv_service — a shard-per-core KV tier serving concurrent clients.
//
// Build & run:   ./build/examples/kv_service [clients] [ops-per-client]
//
// Each client thread owns a KvService::Client handle and runs an 80/20
// get/put mix over a prefilled key space: writes record a value derived
// from (client, key) and every read validates that the value it observes
// was written by SOME client's legitimate write to that exact key — never
// torn, never another key's value.  The tail of each client is a burst of
// async puts whose result slots OUTLIVE the service, so shutdown has real
// work in flight: the destructor's graceful-drain contract says every one
// of them is applied and completed before it returns, which the post-
// destruction checks verify.  Runs with fewer ring slots than clients on
// purpose, so both the SpscRing mailbox path and the MpmcQueue fallback
// path carry traffic.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/barrier.hpp"
#include "service/kv_service.hpp"
#include "sync/oneshot.hpp"

using namespace ccds;

namespace {

using Svc = KvService<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kKeySpace = 4096;
constexpr std::uint64_t kTag = 1ull << 32;  // value = kTag*(client+1) + key

bool value_ok(std::uint64_t key, std::uint64_t v, int clients) {
  const std::uint64_t c = v / kTag;  // 0 = prefill, else client c-1 wrote it
  return v % kTag == key && c <= static_cast<std::uint64_t>(clients);
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t ops =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;
  const std::uint64_t tail = 512;  // in-flight async puts at shutdown

  std::atomic<std::uint64_t> reads{0}, writes{0};
  std::atomic<bool> torn{false};
  // Declared before the service so these slots survive its destruction.
  std::vector<OneShot<Svc::Response>> tail_slots(
      static_cast<std::size_t>(clients) * tail);

  std::uint64_t applied = 0, fallback = 0, violations = 0, occupancy = 0;
  {
    Svc::Config cfg;
    cfg.shards = 4;
    cfg.client_slots = 2;  // 2 slots, N clients: rings AND fallback in play
    Svc svc(cfg);
    for (std::uint64_t k = 0; k < kKeySpace; ++k) svc.prefill(k, k);

    SpinBarrier start(static_cast<std::uint32_t>(clients));
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = svc.make_client();
        std::uint64_t rng = 0x9e3779b97f4a7c15ull * (c + 1);
        start.arrive_and_wait();
        std::uint64_t r = 0, w = 0;
        for (std::uint64_t i = 0; i < ops; ++i) {
          rng ^= rng << 13, rng ^= rng >> 7, rng ^= rng << 17;  // xorshift
          const std::uint64_t key = rng % kKeySpace;
          if (rng % 100 < 80) {
            const auto v = client.get(key);
            if (!v || !value_ok(key, *v, clients)) torn.store(true);
            ++r;
          } else {
            client.put(key, kTag * (c + 1) + key);
            ++w;
          }
        }
        // Shutdown fodder: submit and walk away; the service destructor
        // owes us every completion.
        for (std::uint64_t i = 0; i < tail; ++i) {
          const std::uint64_t key = (rng + i) % kKeySpace;
          client.put_async(key, kTag * (c + 1) + key,
                           &tail_slots[c * tail + i]);
        }
        reads.fetch_add(r), writes.fetch_add(w + tail);
      });
    }
    for (auto& t : threads) t.join();

    occupancy = svc.size();
    violations = svc.route_violations();
    // svc destroyed here: workers drain every mailbox, then join.
  }

  for (std::size_t s = 0; s < tail_slots.size(); ++s) {
    if (!tail_slots[s].ready()) {
      std::printf("BUG: tail slot %zu not completed by shutdown drain\n", s);
      return 1;
    }
    applied += 1;
    fallback += tail_slots[s].take().found ? 0 : 1;  // all keys prefilled
  }

  const bool ok = !torn.load() && violations == 0 && fallback == 0 &&
                  occupancy == kKeySpace && applied == tail_slots.size();
  std::printf(
      "kv_service: %d clients, %llu reads + %llu writes, occupancy %llu\n"
      "  drained at shutdown: %llu/%zu in-flight puts completed\n"
      "  route violations: %llu   torn reads: %s\n%s\n",
      clients, static_cast<unsigned long long>(reads.load()),
      static_cast<unsigned long long>(writes.load()),
      static_cast<unsigned long long>(occupancy),
      static_cast<unsigned long long>(applied), tail_slots.size(),
      static_cast<unsigned long long>(violations),
      torn.load() ? "YES (BUG!)" : "none", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

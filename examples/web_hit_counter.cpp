// web_hit_counter — the classic motivating scenario for concurrent data
// structures: a multi-threaded server tracking request statistics.
//
// Build & run:   ./build/examples/web_hit_counter [workers] [requests]
//
// Simulates `workers` threads handling `requests` requests each.  Each
// request:
//   * bumps a global hit counter,
//   * records the client IP in a unique-visitor set,
//   * bumps a per-endpoint counter.
// The same workload is run twice: once on coarse-grained structures (one
// mutex around everything — the "obviously correct" port of sequential
// code) and once on the ccds concurrent structures (sharded counter,
// striped map, split-ordered set).  Prints both runtimes and verifies the
// two runs agree on every statistic.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/barrier.hpp"
#include "core/rng.hpp"
#include "counter/counters.hpp"
#include "hash/split_ordered_set.hpp"
#include "hash/striped_hash_map.hpp"

using namespace ccds;

namespace {

constexpr int kEndpoints = 16;
const char* kEndpointNames[kEndpoints] = {
    "/",         "/login",   "/logout",   "/search",  "/cart",  "/checkout",
    "/profile",  "/orders",  "/help",     "/api/v1",  "/feed",  "/settings",
    "/admin",    "/metrics", "/health",   "/static"};

// A synthetic request: client IP (bounded pool, so uniques saturate) and
// endpoint index.
struct Request {
  std::uint32_t ip;
  int endpoint;
};

Request make_request(Xoshiro256& rng) {
  return Request{static_cast<std::uint32_t>(rng.next_below(50000)),
                 static_cast<int>(rng.next_below(kEndpoints))};
}

// ---------- coarse-grained server stats (the strawman) ----------

class CoarseStats {
 public:
  void record(const Request& r) {
    std::lock_guard<std::mutex> g(mu_);
    ++hits_;
    uniques_.insert(r.ip);
    ++per_endpoint_[r.endpoint];
  }
  std::uint64_t hits() const {
    std::lock_guard<std::mutex> g(mu_);
    return hits_;
  }
  std::size_t uniques() const {
    std::lock_guard<std::mutex> g(mu_);
    return uniques_.size();
  }
  std::uint64_t endpoint_hits(int e) const {
    std::lock_guard<std::mutex> g(mu_);
    auto it = per_endpoint_.find(e);
    return it == per_endpoint_.end() ? 0 : it->second;
  }

 private:
  mutable std::mutex mu_;
  std::uint64_t hits_ = 0;
  std::set<std::uint32_t> uniques_;
  std::unordered_map<int, std::uint64_t> per_endpoint_;
};

// ---------- ccds concurrent server stats ----------

class ConcurrentStats {
 public:
  void record(const Request& r) {
    hits_.add(1);
    if (uniques_.insert(r.ip)) unique_count_.add(1);
    endpoint_hits_[r.endpoint]->fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t hits() const { return hits_.load(); }
  std::size_t uniques() const { return unique_count_.load(); }
  std::uint64_t endpoint_hits(int e) const {
    return endpoint_hits_[e]->load(std::memory_order_relaxed);
  }

 private:
  ShardedCounter hits_;
  ShardedCounter unique_count_;
  SplitOrderedHashSet<std::uint32_t> uniques_;
  Padded<std::atomic<std::uint64_t>> endpoint_hits_[kEndpoints] = {};
};

template <typename Stats>
double run_workload(Stats& stats, int workers, int requests_per_worker) {
  SpinBarrier barrier(workers + 1);
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      Xoshiro256 rng(w + 1);  // same seeds for both runs => same requests
      barrier.arrive_and_wait();
      for (int i = 0; i < requests_per_worker; ++i) {
        stats.record(make_request(rng));
      }
    });
  }
  barrier.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  const int requests = argc > 2 ? std::atoi(argv[2]) : 200000;

  std::printf("web_hit_counter: %d workers x %d requests\n", workers,
              requests);

  CoarseStats coarse;
  const double coarse_secs = run_workload(coarse, workers, requests);
  ConcurrentStats fast;
  const double fast_secs = run_workload(fast, workers, requests);

  const double total = static_cast<double>(workers) * requests;
  std::printf("\n  %-22s %10s %14s\n", "implementation", "seconds", "req/sec");
  std::printf("  %-22s %10.3f %14.0f\n", "coarse (one mutex)", coarse_secs,
              total / coarse_secs);
  std::printf("  %-22s %10.3f %14.0f\n", "ccds concurrent", fast_secs,
              total / fast_secs);

  // The two implementations processed identical request streams; their
  // statistics must agree exactly.
  bool ok = coarse.hits() == fast.hits() &&
            coarse.uniques() == fast.uniques();
  std::printf("\n  hits:    %llu vs %llu\n",
              static_cast<unsigned long long>(coarse.hits()),
              static_cast<unsigned long long>(fast.hits()));
  std::printf("  uniques: %zu vs %zu\n", coarse.uniques(), fast.uniques());
  std::printf("  top endpoints:\n");
  for (int e = 0; e < 4; ++e) {
    ok = ok && coarse.endpoint_hits(e) == fast.endpoint_hits(e);
    std::printf("    %-10s %llu\n", kEndpointNames[e],
                static_cast<unsigned long long>(fast.endpoint_hits(e)));
  }
  std::printf("\n  statistics %s\n", ok ? "AGREE" : "DISAGREE (BUG!)");
  return ok ? 0 : 1;
}

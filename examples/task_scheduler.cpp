// task_scheduler — a miniature fork-join scheduler on Chase-Lev deques.
//
// Build & run:   ./build/examples/task_scheduler [workers] [leaf_size]
//
// Demonstrates the work-stealing pattern the WorkStealingDeque exists for:
// each worker owns a deque; it pushes the subtasks it spawns onto its own
// deque (hot path: no CAS), pops locally LIFO for cache locality, and
// steals FIFO from a random victim when it runs dry.
//
// The demo job is a divide-and-conquer sum over a large array: the root
// range is split recursively until ranges drop below leaf_size, with leaves
// accumulated into a global sum.  The result is verified against the
// sequential answer, and per-worker execution/steal statistics are printed
// to show the load balancing in action.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "core/barrier.hpp"
#include "core/rng.hpp"
#include "core/thread_registry.hpp"
#include "queue/ws_deque.hpp"

using namespace ccds;

namespace {

// A task is an index range [lo, hi) over the shared array — trivially
// copyable, so it can live directly in the deque's cells.
struct RangeTask {
  std::uint32_t lo;
  std::uint32_t hi;
};

class Scheduler {
 public:
  Scheduler(const std::vector<std::uint64_t>& data, std::size_t workers,
            std::uint32_t leaf_size)
      : data_(data),
        leaf_size_(leaf_size),
        deques_(workers),
        executed_(workers),
        stolen_(workers) {}

  std::uint64_t run(RangeTask root) {
    pending_.store(1, std::memory_order_relaxed);
    deques_[0].owner.push(root);

    SpinBarrier barrier(deques_.size());
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < deques_.size(); ++w) {
      threads.emplace_back([&, w] {
        barrier.arrive_and_wait();
        worker_loop(w);
      });
    }
    for (auto& t : threads) t.join();
    return sum_.load(std::memory_order_relaxed);
  }

  void print_stats() const {
    std::printf("  %-8s %12s %10s\n", "worker", "leaves run", "steals");
    for (std::size_t w = 0; w < deques_.size(); ++w) {
      std::printf("  %-8zu %12llu %10llu\n", w,
                  static_cast<unsigned long long>(executed_[w].value),
                  static_cast<unsigned long long>(stolen_[w].value));
    }
  }

 private:
  struct AlignedDeque {
    WorkStealingDeque<RangeTask> owner;
  };

  void worker_loop(std::size_t me) {
    Xoshiro256 rng(me * 7919 + 13);
    while (pending_.load(std::memory_order_acquire) != 0) {
      if (auto t = deques_[me].owner.try_pop()) {
        execute(me, *t);
        continue;
      }
      // Own deque dry: steal from a random victim.
      const std::size_t victim = rng.next_below(deques_.size());
      if (victim != me) {
        if (auto t = deques_[victim].owner.try_steal()) {
          stolen_[me].value += 1;
          execute(me, *t);
          continue;
        }
      }
      cpu_relax();
    }
  }

  void execute(std::size_t me, RangeTask t) {
    if (t.hi - t.lo <= leaf_size_) {
      std::uint64_t local = 0;
      for (std::uint32_t i = t.lo; i < t.hi; ++i) local += data_[i];
      sum_.fetch_add(local, std::memory_order_relaxed);
      executed_[me].value += 1;
      // This leaf is done.
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    // Split: one task replaces itself with two (net pending +1).
    const std::uint32_t mid = t.lo + (t.hi - t.lo) / 2;
    pending_.fetch_add(1, std::memory_order_acq_rel);
    deques_[me].owner.push(RangeTask{mid, t.hi});
    deques_[me].owner.push(RangeTask{t.lo, mid});
  }

  const std::vector<std::uint64_t>& data_;
  const std::uint32_t leaf_size_;
  std::vector<AlignedDeque> deques_;
  CCDS_CACHELINE_ALIGNED std::atomic<std::uint64_t> sum_{0};
  CCDS_CACHELINE_ALIGNED std::atomic<std::int64_t> pending_{0};
  std::vector<Padded<std::uint64_t>> executed_;
  std::vector<Padded<std::uint64_t>> stolen_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t workers =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const std::uint32_t leaf = argc > 2 ? std::atoi(argv[2]) : 1024;
  constexpr std::uint32_t kN = 1 << 22;  // 4M elements

  std::printf("task_scheduler: %zu workers, %u-element leaves, %u elements\n",
              workers, leaf, kN);

  std::vector<std::uint64_t> data(kN);
  Xoshiro256 rng(99);
  for (auto& d : data) d = rng.next_below(1000);
  const std::uint64_t expected =
      std::accumulate(data.begin(), data.end(), std::uint64_t{0});

  Scheduler sched(data, workers, leaf);
  const std::uint64_t got = sched.run(RangeTask{0, kN});

  std::printf("  parallel sum = %llu, sequential sum = %llu -> %s\n",
              static_cast<unsigned long long>(got),
              static_cast<unsigned long long>(expected),
              got == expected ? "MATCH" : "MISMATCH (BUG!)");
  sched.print_stats();
  return got == expected ? 0 : 1;
}

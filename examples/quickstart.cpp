// quickstart — a ten-minute tour of the ccds library.
//
// Build & run:   ./build/examples/quickstart
//
// Walks through one structure from each family, first single-threaded (to
// show the API), then under a small multi-threaded workload (to show that
// the concurrent semantics hold: counts conserve, sets agree, queues don't
// lose elements).
#include <cstdio>
#include <thread>
#include <vector>

#include "ccds.hpp"

using namespace ccds;

namespace {

void demo_counters() {
  std::printf("== counters ==\n");
  AtomicCounter hits;
  ShardedCounter fast_hits;

  constexpr int kThreads = 4, kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        hits.fetch_add(1);
        fast_hits.add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::printf("  atomic counter:  %llu (expected %d)\n",
              static_cast<unsigned long long>(hits.load()),
              kThreads * kPerThread);
  std::printf("  sharded counter: %llu (expected %d)\n",
              static_cast<unsigned long long>(fast_hits.load()),
              kThreads * kPerThread);
}

void demo_stack_and_queue() {
  std::printf("== treiber stack & michael-scott queue ==\n");
  TreiberStack<int> stack;
  MSQueue<int> queue;

  for (int i = 1; i <= 3; ++i) {
    stack.push(i);
    queue.enqueue(i);
  }
  std::printf("  stack pops (LIFO):   ");
  while (auto v = stack.try_pop()) std::printf("%d ", *v);
  std::printf("\n  queue pops (FIFO):   ");
  while (auto v = queue.try_dequeue()) std::printf("%d ", *v);
  std::printf("\n");

  // Concurrent conservation check.
  std::atomic<int> popped{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        queue.enqueue(i);
        if (queue.try_dequeue()) popped.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  int leftover = 0;
  while (queue.try_dequeue()) ++leftover;
  std::printf("  concurrent queue: popped %d + leftover %d == pushed %d\n",
              popped.load(), leftover, 40000);
}

void demo_sets() {
  std::printf("== concurrent sets (lazy list / skip list / hash) ==\n");
  LazyListSet<int> list_set;
  LockFreeSkipListSet<int> skip_set;
  SplitOrderedHashSet<int> hash_set;

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        const int key = t * 500 + i;
        list_set.insert(key % 200);  // contended range
        skip_set.insert(key);
        hash_set.insert(key);
      }
    });
  }
  for (auto& w : workers) w.join();

  int list_count = 0;
  for (int k = 0; k < 200; ++k) list_count += list_set.contains(k) ? 1 : 0;
  std::printf("  lazy list holds %d distinct keys (expected 200)\n",
              list_count);

  int skip_count = 0, hash_count = 0;
  for (int k = 0; k < 2000; ++k) {
    skip_count += skip_set.contains(k) ? 1 : 0;
    hash_count += hash_set.contains(k) ? 1 : 0;
  }
  std::printf("  skip list holds %d keys, hash set holds %d (expected 2000)\n",
              skip_count, hash_count);
}

void demo_map() {
  std::printf("== striped hash map ==\n");
  StripedHashMap<std::string, int> config;
  config.insert("threads", 8);
  config.insert("port", 8080);
  config.insert("port", 9090);  // overwrite
  std::printf("  port=%d threads=%d size=%zu\n", *config.get("port"),
              *config.get("threads"), config.size());
}

void demo_flat_combining() {
  std::printf("== flat combining over arbitrary sequential state ==\n");
  FlatCombiner<std::vector<int>> shared_vec;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        shared_vec.apply([t](std::vector<int>& v) { v.push_back(t); });
      }
    });
  }
  for (auto& w : workers) w.join();
  const std::size_t n =
      shared_vec.apply([](std::vector<int>& v) { return v.size(); });
  std::printf("  combined vector has %zu entries (expected 4000)\n", n);
}

}  // namespace

int main() {
  std::printf("ccds quickstart\n===============\n");
  demo_counters();
  demo_stack_and_queue();
  demo_sets();
  demo_map();
  demo_flat_combining();
  std::printf("done.\n");
  return 0;
}
